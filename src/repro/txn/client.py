"""Transaction clients: the RPC and one-sided commit dataplanes.

Both drivers expose the same closed-loop transaction interface and
record the same :class:`~repro.ha.checker.TxnRecord` history, so the
serializability checker and the benchmark harness cannot tell them
apart — only their performance differs:

* **RPC** (:class:`RpcChannel` + ``_attempt_rpc``) — HERD-style: the
  client UC-WRITEs framed requests into per-partition request regions
  and receives UD SEND responses.  Single-partition update
  transactions take the ``TXN_ONE`` one-shot (1 RTT, zero aborts);
  multi-partition ones run READ → PREPARE (lock) → VALIDATE → COMMIT.
  Every byte of concurrency control is executed by server CPUs.
* **One-sided** (``_attempt_onesided``) — FaRM/DrTM-style: the client
  READs slots directly, locks write keys with ``ATOMIC_CMP_AND_SWP``,
  re-READs headers to validate, and installs with WRITEs that release
  the lock, bump the version, and deposit the value in one packet.
  Server CPUs never run — which is why this dataplane keeps committing
  while a participant process is crash-paused — but every transaction
  costs several RTTs and hot keys degenerate into CAS retry storms.
"""

from __future__ import annotations

import random
import struct
from typing import Dict, Generator, List, Optional, Tuple

from repro.ha.checker import TxnRecord
from repro.sim import Event, Store
from repro.txn import wire
from repro.txn.store import (
    LOCK_OFF,
    SLOT_HDR_BYTES,
    pack_install,
    parse_header,
    parse_slot,
)
from repro.verbs import (
    CompletionQueue,
    QueuePair,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)

#: value payloads start with this struct: (client, seq, key) — every
#: written value names its writer, which is what lets the post-run
#: audit attribute any byte in the store to a transaction
_VALUE_TAG = struct.Struct("<IIQ")
VALUE_TAG_BYTES = _VALUE_TAG.size

_GRH = 40


def make_value(client: int, seq: int, key: int, value_bytes: int) -> bytes:
    """The unique value transaction (client, seq) writes to ``key``."""
    tag = _VALUE_TAG.pack(client, seq, key)
    if value_bytes < VALUE_TAG_BYTES:
        raise ValueError("value_bytes must be >= %d" % VALUE_TAG_BYTES)
    return tag + b"\x00" * (value_bytes - VALUE_TAG_BYTES)


def parse_value(value: bytes) -> Optional[Tuple[int, int, int]]:
    """(client, seq, key) if ``value`` was written by a txn, else None."""
    if len(value) < VALUE_TAG_BYTES or not any(value):
        return None
    client, seq, key = _VALUE_TAG.unpack_from(value, 0)
    return client, seq, key


class RpcChannel:
    """A client's request/response machinery for the RPC dataplane.

    One UC QP carries request WRITEs to every partition; one UD QP with
    a RECV ring takes the responses.  :meth:`call` broadcasts a request
    per partition and collects responses, retrying the stragglers on a
    timeout — which is what rides out a crash-paused participant.
    """

    def __init__(self, device: RdmaDevice, name: str, timeout_ns: float,
                 recv_slots: int = 64, recv_bytes: int = 1024) -> None:
        self.device = device
        self.sim = device.sim
        self.name = name
        self.timeout_ns = timeout_ns
        self.uc_qp: Optional[QueuePair] = None  # wired by the cluster
        self.recv_cq = CompletionQueue(self.sim, name + ".rcq")
        self.ud_qp = device.create_qp(Transport.UD, recv_cq=self.recv_cq)
        self._recv_slot = _GRH + recv_bytes
        self.recv_mr = device.register_memory(recv_slots * self._recv_slot)
        self._recv_slots = recv_slots
        self._staging = device.register_memory(4096)
        self._staging_cursor = 0
        #: partition -> (raddr of my request slot, rkey)
        self.req_slots: Dict[int, Tuple[int, int]] = {}
        self.inbox: Store = Store(self.sim)
        self._att = 0
        self.retries = 0

    def start(self) -> None:
        for i in range(self._recv_slots):
            self._post_recv(i * self._recv_slot)
        self.sim.process(self._dispatch(), name=self.name + "-rcq")

    def _post_recv(self, offset: int) -> None:
        self.device.post_recv(
            self.ud_qp,
            RecvRequest(wr_id=offset, local=(self.recv_mr, offset, self._recv_slot)),
        )

    def _dispatch(self) -> Generator[Event, None, None]:
        p = self.device.profile
        while True:
            cqe = yield self.recv_cq.pop()
            raw = self.recv_mr.read(cqe.wr_id + _GRH, cqe.byte_len)
            self._post_recv(cqe.wr_id)
            yield self.sim.timeout(p.cq_poll_ns + p.post_recv_ns)
            self.inbox.put(("r",) + wire.decode_response(raw))

    def _post_request(self, partition: int, kind: int, seq: int,
                      body: bytes) -> Generator[Event, None, None]:
        payload = wire.encode_request(kind, seq, body)
        raddr, rkey = self.req_slots[partition]
        if len(payload) <= self.device.profile.max_inline:
            wr = WorkRequest.write(
                raddr=raddr, rkey=rkey, payload=payload, inline=True, signaled=False
            )
        else:
            if self._staging_cursor + len(payload) > 4096:
                self._staging_cursor = 0
            off = self._staging_cursor
            self._staging.write(off, payload)
            self._staging_cursor += len(payload)
            wr = WorkRequest.write(
                raddr=raddr, rkey=rkey,
                local=(self._staging, off, len(payload)), signaled=False,
            )
        yield from self.device.post_send_timed(self.uc_qp, wr)

    def call(self, targets: Dict[int, Tuple[int, bytes]], seq: int
             ) -> Generator[Event, None, Dict[int, Tuple[int, bytes]]]:
        """Send (kind, body) to each partition; collect all responses.

        Retries unanswered partitions on timeout forever — the server
        dedup cache makes retries idempotent, so this is safe across
        crash-pause outages.
        """
        want = dict(targets)
        results: Dict[int, Tuple[int, bytes]] = {}
        first = True
        while want:
            if not first:
                self.retries += len(want)
            first = False
            for partition in sorted(want):
                kind, body = want[partition]
                yield from self._post_request(partition, kind, seq, body)
            self._att += 1
            att = self._att
            self.sim.call_in(
                self.timeout_ns, lambda a=att: self.inbox.put(("t", a))
            )
            while want:
                msg = yield self.inbox.get()
                if msg[0] == "t":
                    if msg[1] == att:
                        break  # resend the stragglers
                    continue  # a stale watchdog token
                _, kind_r, seq_r, status, partition, body = msg
                if seq_r != seq or partition not in want:
                    continue  # duplicate or late response
                if kind_r != want[partition][0]:
                    continue
                results[partition] = (status, body)
                del want[partition]
        return results


class TxnClientProcess:
    """One closed-loop transaction client, on either dataplane."""

    def __init__(
        self,
        cid: int,
        device: RdmaDevice,
        config,  # TxnConfig (kept untyped to avoid a circular import)
        rng: random.Random,
    ) -> None:
        self.cid = cid
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.rng = rng
        self.dataplane = config.dataplane
        self.stop_at = 0.0
        self.history: List[TxnRecord] = []
        self.commits = 0
        self.aborts = 0
        self.completed_hook = None  # fn(now, latency_ns) on commit
        self.commit_hook = None     # fn(now) — cluster counters
        self.abort_hook = None
        self._seq = 0
        cfg = config
        if self.dataplane == "rpc":
            self.rpc = RpcChannel(
                device, "txn-c%d" % cid, cfg.rpc_timeout_ns,
                recv_bytes=cfg.resp_slot_bytes,
            )
        else:
            self.rpc = None
            self.rc_qp: Optional[QueuePair] = None  # wired by the cluster
            #: partition -> (store base addr, rkey); slot geometry is
            #: cluster-wide, so key -> address is pure arithmetic
            self.store_slots: Dict[int, Tuple[int, int]] = {}
            slot = SLOT_HDR_BYTES + cfg.value_bytes
            self._read_base = 0
            self._hdr_base = cfg.keys_per_txn * slot
            self._atomic_off = self._hdr_base + cfg.keys_per_txn * SLOT_HDR_BYTES
            self.sink = device.register_memory(self._atomic_off + 64)
            self._cq_inbox: Store = Store(self.sim)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        if self.rpc is not None:
            self.rpc.start()
        else:
            self.sim.process(self._dispatch_cqes(), name="txn-c%d-scq" % self.cid)
        self.sim.process(self.run(), name="txn-c%d" % self.cid)

    def _dispatch_cqes(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.rc_qp.send_cq.pop()
            self._cq_inbox.put(cqe)

    def _await_cqes(self, n: int) -> Generator[Event, None, None]:
        for _ in range(n):
            yield self._cq_inbox.get()
        yield self.sim.timeout(self.profile.cq_poll_ns)

    # -- workload ----------------------------------------------------------

    def _pick_keys(self) -> List[int]:
        cfg = self.config
        hot = cfg.hot_fraction > 0 and self.rng.random() < cfg.hot_fraction
        keys: List[int] = []
        while len(keys) < cfg.keys_per_txn:
            if hot:
                # The hot set {0, P, 2P, ...} lives entirely in
                # partition 0: hot transactions are single-partition,
                # so the RPC dataplane one-shots them while the
                # one-sided dataplane fights over their lock words.
                k = cfg.n_partitions * self.rng.randrange(cfg.n_hot)
            else:
                k = self.rng.randrange(cfg.n_keys)
            if k not in keys:
                keys.append(k)
        return keys

    def run(self) -> Generator[Event, None, None]:
        cfg = self.config
        while self.sim.now < self.stop_at:
            keys = self._pick_keys()
            read_only = self.rng.random() < cfg.read_only_fraction
            writes = [] if read_only else sorted(set(keys[: cfg.writes_per_txn]))
            attempt = 0
            while True:
                self._seq += 1
                seq = self._seq
                invoked = self.sim.now
                if self.dataplane == "rpc":
                    ok, reads, wvals = yield from self._attempt_rpc(seq, keys, writes)
                else:
                    ok, reads, wvals = yield from self._attempt_onesided(seq, keys, writes)
                self.history.append(
                    TxnRecord(
                        txn_id=self.cid * 1_000_000 + seq,
                        client=self.cid,
                        reads=tuple(reads),
                        writes=tuple(wvals),
                        invoke=invoked,
                        respond=self.sim.now,
                        status="committed" if ok else "aborted",
                    )
                )
                if ok:
                    self.commits += 1
                    if self.commit_hook is not None:
                        self.commit_hook(self.sim.now)
                    if self.completed_hook is not None:
                        self.completed_hook(self.sim.now, self.sim.now - invoked)
                    break
                self.aborts += 1
                if self.abort_hook is not None:
                    self.abort_hook(self.sim.now)
                if self.sim.now >= self.stop_at:
                    break  # give up at the horizon; the attempt is recorded
                attempt += 1
                backoff = cfg.backoff_ns * (1 + min(attempt, 6))
                yield self.sim.timeout(backoff * (0.5 + self.rng.random()))

    # -- RPC dataplane -----------------------------------------------------

    def _attempt_rpc(
        self, seq: int, keys: List[int], writes: List[int]
    ) -> Generator[Event, None, Tuple[bool, list, list]]:
        cfg = self.config
        parts: Dict[int, List[int]] = {}
        for k in sorted(keys):
            parts.setdefault(k % cfg.n_partitions, []).append(k)
        wvals = [(k, make_value(self.cid, seq, k, cfg.value_bytes)) for k in writes]
        wparts = {k % cfg.n_partitions for k in writes}

        if writes and len(parts) == 1:
            # Single-partition update: the TXN_ONE one-shot (1 RTT).
            partition = next(iter(parts))
            res = yield from self.rpc.call(
                {partition: (wire.TXN_ONE, wire.encode_one(sorted(keys), wvals))}, seq
            )
            status, body = res[partition]
            if status != wire.ST_OK:
                return False, [], []
            reads = [(k, v) for k, _ver, v in wire.decode_read_items(body, cfg.value_bytes)]
            return True, reads, wvals

        # Read phase: one TXN_READ per partition.
        res = yield from self.rpc.call(
            {p: (wire.TXN_READ, wire.encode_keys(ks)) for p, ks in parts.items()}, seq
        )
        values: Dict[int, bytes] = {}
        versions: Dict[int, int] = {}
        for _p, (_status, body) in res.items():
            for k, ver, v in wire.decode_read_items(body, cfg.value_bytes):
                values[k] = v
                versions[k] = ver
        reads = sorted(values.items())
        if not writes and len(parts) == 1:
            # One partition's read loop is atomic: a consistent snapshot.
            return True, reads, []

        # Lock phase: PREPARE the write partitions (lock + stage, no
        # read validation yet — FaRM ordering: all locks first).
        if wparts:
            targets = {}
            for p in sorted(wparts):
                pw = [(k, v) for k, v in wvals if k % cfg.n_partitions == p]
                targets[p] = (wire.TXN_PREPARE, wire.encode_prepare([], pw))
            res = yield from self.rpc.call(targets, seq)
            locked = sorted(p for p, (status, _) in res.items() if status == wire.ST_OK)
            if len(locked) != len(wparts):
                if locked:
                    yield from self.rpc.call(
                        {p: (wire.TXN_ABORT, b"") for p in locked}, seq
                    )
                return False, [], []

        # Validate phase: every partition we read from, now that all
        # write locks are held everywhere.
        targets = {}
        for p, ks in parts.items():
            pr = [(k, versions[k]) for k in ks]
            targets[p] = (wire.TXN_VALIDATE, wire.encode_prepare(pr, []))
        res = yield from self.rpc.call(targets, seq)
        if all(status == wire.ST_OK for status, _ in res.values()):
            if wparts:
                yield from self.rpc.call(
                    {p: (wire.TXN_COMMIT, b"") for p in sorted(wparts)}, seq
                )
            return True, reads, wvals
        if wparts:
            yield from self.rpc.call(
                {p: (wire.TXN_ABORT, b"") for p in sorted(wparts)}, seq
            )
        return False, [], []

    # -- one-sided dataplane -----------------------------------------------

    def _slot_info(self, key: int) -> Tuple[int, int]:
        cfg = self.config
        partition = key % cfg.n_partitions
        base, rkey = self.store_slots[partition]
        slot = SLOT_HDR_BYTES + cfg.value_bytes
        return base + (key // cfg.n_partitions) * slot, rkey

    def _attempt_onesided(
        self, seq: int, keys: List[int], writes: List[int]
    ) -> Generator[Event, None, Tuple[bool, list, list]]:
        cfg = self.config
        slot_bytes = SLOT_HDR_BYTES + cfg.value_bytes
        ordered = sorted(keys)

        # 1. Read phase: pipelined READs of the full slots.
        for i, k in enumerate(ordered):
            raddr, rkey = self._slot_info(k)
            wr = WorkRequest.read(
                raddr=raddr, rkey=rkey,
                local=(self.sink, self._read_base + i * slot_bytes, slot_bytes),
                wr_id=i,
            )
            yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(len(ordered))
        versions: Dict[int, int] = {}
        values: Dict[int, bytes] = {}
        for i, k in enumerate(ordered):
            raw = self.sink.read(self._read_base + i * slot_bytes, slot_bytes)
            _lock, ver, val = parse_slot(raw, cfg.value_bytes)
            versions[k] = ver
            values[k] = val
        reads = sorted(values.items())

        if not writes:
            if len(ordered) == 1:
                return True, reads, []  # one READ is atomic by itself
            ok = yield from self._validate(ordered, versions, owner=0, wkeys=frozenset())
            return (ok, reads if ok else [], [])

        # 2. Lock phase: CAS each write key's lock word, sorted order.
        owner = (1 << 63) | ((self.cid + 1) << 24) | (seq & 0xFFFFFF)
        acquired: List[int] = []
        for k in writes:
            raddr, rkey = self._slot_info(k)
            original = yield from self._cas(raddr + LOCK_OFF, rkey, 0, owner)
            if original != 0:
                yield from self._release(acquired)
                return False, [], []
            acquired.append(k)

        # 3. Validate: re-READ every slot header under the locks.
        ok = yield from self._validate(ordered, versions, owner, frozenset(writes))
        if not ok:
            yield from self._release(acquired)
            return False, [], []

        # 4. Install: one WRITE per write key carries the released lock,
        # the bumped version, and the value — committing is torn-proof
        # because each slot changes in a single packet, and the NIC
        # needs no server CPU, so commits proceed during a crash-pause.
        wvals = [(k, make_value(self.cid, seq, k, cfg.value_bytes)) for k in writes]
        for j, (k, val) in enumerate(wvals):
            raddr, rkey = self._slot_info(k)
            payload = pack_install(versions[k] + 1, val)
            last = j == len(wvals) - 1
            wr = WorkRequest.write(
                raddr=raddr, rkey=rkey, payload=payload,
                inline=len(payload) <= self.profile.max_inline, signaled=last,
            )
            yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(1)
        return True, reads, wvals

    def _cas(self, raddr: int, rkey: int, compare: int, swap: int
             ) -> Generator[Event, None, int]:
        wr = WorkRequest.cmp_swap(
            raddr=raddr, rkey=rkey, compare=compare, swap=swap,
            local=(self.sink, self._atomic_off, 8),
        )
        yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(1)
        return int.from_bytes(self.sink.read(self._atomic_off, 8), "little")

    def _validate(self, ordered: List[int], versions: Dict[int, int],
                  owner: int, wkeys: frozenset
                  ) -> Generator[Event, None, bool]:
        for i, k in enumerate(ordered):
            raddr, rkey = self._slot_info(k)
            wr = WorkRequest.read(
                raddr=raddr, rkey=rkey,
                local=(self.sink, self._hdr_base + i * SLOT_HDR_BYTES, SLOT_HDR_BYTES),
                wr_id=i,
            )
            yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(len(ordered))
        for i, k in enumerate(ordered):
            raw = self.sink.read(self._hdr_base + i * SLOT_HDR_BYTES, SLOT_HDR_BYTES)
            lock, ver = parse_header(raw)
            if ver != versions[k]:
                return False
            if k in wkeys:
                if lock != owner:
                    return False
            elif lock != 0:
                # Someone else is mid-install on a key we read: their
                # write serialises around us; retry rather than risk it.
                return False
        return True

    def _release(self, acquired: List[int]) -> Generator[Event, None, None]:
        """Zero the lock words of ``acquired`` (abort path)."""
        if not acquired:
            return
        for j, k in enumerate(acquired):
            raddr, rkey = self._slot_info(k)
            wr = WorkRequest.write(
                raddr=raddr + LOCK_OFF, rkey=rkey, payload=b"\x00" * 8,
                inline=True, signaled=j == len(acquired) - 1,
            )
            yield from self.device.post_send_timed(self.rc_qp, wr)
        yield from self._await_cqes(1)
