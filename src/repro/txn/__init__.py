"""repro.txn — multi-key transactions over the partitioned KV, two ways.

The paper's thesis is that RPC beats one-sided READs for a *key-value*
service because a GET needs multiple READs.  Transactions sharpen the
same contrast: an update transaction needs lock + validate + install
round trips on the one-sided dataplane, versus one or two
server-mediated RPCs — but the one-sided dataplane never spends a
server CPU cycle and keeps committing while a participant is down.

* :class:`TxnCluster` / :class:`TxnConfig` — the transaction system on
  either commit dataplane (``"rpc"`` | ``"onesided"``).
* :class:`TxnReport` — throughput + the serializability/torn-write
  audits and a determinism fingerprint.
* :class:`TxnQueueCluster` / :class:`QueueConfig` — a remote FIFO
  queue built both ways (CAS/FAA tickets vs server-side deque).
* :mod:`repro.txn.wire`, :mod:`repro.txn.store` — shared formats.

See docs/TXN.md for the design and the crossover figure.
"""

from repro.txn.cluster import DATAPLANES, TxnCluster, TxnConfig, TxnReport
from repro.txn.client import TxnClientProcess, make_value, parse_value
from repro.txn.queue import QueueConfig, QueueReport, TxnQueueCluster
from repro.txn.server import TxnServerProcess
from repro.txn.store import TxnPartitionStore

__all__ = [
    "DATAPLANES",
    "TxnCluster",
    "TxnConfig",
    "TxnReport",
    "TxnClientProcess",
    "TxnServerProcess",
    "TxnPartitionStore",
    "TxnQueueCluster",
    "QueueConfig",
    "QueueReport",
    "make_value",
    "parse_value",
]
