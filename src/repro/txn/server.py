"""The RPC commit dataplane's participant: a HERD-style server process.

One :class:`TxnServerProcess` owns one partition.  Clients UC-WRITE
framed requests (:mod:`repro.txn.wire`) into a per-client slot of the
partition's request region; the region's ``on_write`` observer turns
the landing WRITE into an arrival, and this process handles requests
one at a time inside its polling loop — which is exactly what makes
the RPC dataplane's concurrency control cheap: per-partition state is
touched by one core, so "locking" a key is a CPU-side store, and a
single-partition transaction can read + validate + apply atomically in
one request (``TXN_ONE``) with zero aborts.

Multi-partition transactions run HERD-style two-phase commit:
``TXN_PREPARE`` validates read versions, locks + stages writes, and
votes; ``TXN_COMMIT`` applies staged writes and releases locks;
``TXN_ABORT`` drops them.  All slot mutations for one request happen
*between* simulator yields, so a crash (which parks the process at a
yield boundary) can never tear a commit — the recovery audit in the
cluster asserts this.

Retries are made safe by a per-client dedup cache on ``(seq, phase)``:
a duplicate request (client timeout, crash-pause outage) is answered
with the cached response bytes instead of being re-executed.

Crash/recovery follows the HERD server's pause model: the MR (locks,
versions, values, staged writes) survives — like HERD's ``shmget``
regions surviving a process restart — while the polling loop stops
consuming arrivals until :meth:`recover`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Generator, List, Optional, Set, Tuple

from repro.sim import Event, Store
from repro.txn import wire
from repro.txn.store import TxnPartitionStore
from repro.verbs import QueuePair, RdmaDevice, WorkRequest

#: staging buffer for non-inline UD responses
_STAGING_BYTES = 1 << 16


class TxnServerProcess:
    """One partition's participant core."""

    def __init__(
        self,
        index: int,
        device: RdmaDevice,
        store: TxnPartitionStore,
        value_bytes: int,
    ) -> None:
        self.index = index
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.store = store
        self.value_bytes = value_bytes
        #: client indices that landed a request WRITE (fed by the
        #: cluster's request-region on_write observer)
        self.arrivals: Store = Store(self.sim)
        #: request region, carved per client (wired by the cluster)
        self.region = None
        self.req_slot_bytes = 0
        #: per client: (machine, ud_qpn) for responses
        self.client_ahs: List[Tuple[str, int]] = []
        self.ud_qp: Optional[QueuePair] = None
        self._staging = device.register_memory(_STAGING_BYTES)
        self._staging_cursor = 0
        #: 2PC state: (client, seq) -> [(key, value), ...] staged writes
        self._staged: Dict[Tuple[int, int], List[Tuple[int, bytes]]] = {}
        #: commits already applied, for idempotent duplicate COMMITs
        self._applied: Set[Tuple[int, int]] = set()
        #: per client: (seq, phase rank, kind, cached response payload)
        self._last: Dict[int, Tuple[int, int, int, bytes]] = {}
        #: the server-side FIFO queue (repro.txn.queue's RPC flavour)
        self._queue: Deque[Tuple[int, int]] = deque()
        self._q_next_ticket = 0
        self.alive = True
        self.epoch = 0
        self._charge_keys = 0
        self.requests_handled = 0
        self.commits_applied = 0
        self.prepares_rejected = 0
        self.duplicates_answered = 0

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        self.sim.process(self.run(self.epoch), name="txn-s%d" % self.index)

    def crash(self) -> None:
        """Pause the polling loop; MR state (locks, staged writes) survives."""
        self.alive = False
        self.epoch += 1

    def recover(self) -> None:
        self.alive = True
        self.epoch += 1
        self.start()

    # -- polling loop ------------------------------------------------------

    def run(self, epoch: int) -> Generator[Event, None, None]:
        p = self.profile
        while True:
            client = yield self.arrivals.get()
            if not self.alive or epoch != self.epoch:
                # A stale loop woke on an arrival meant for the next
                # incarnation: hand the wakeup back and exit.
                self.arrivals.put(client)
                return
            yield self.sim.timeout(4 * p.poll_check_ns)
            raw = self.region.read(client * self.req_slot_bytes, self.req_slot_bytes)
            kind, seq, body = wire.decode_request(raw)
            if kind == 0:
                continue  # stale slot (should not happen; be safe)
            rank = wire.PHASE_RANK.get(kind)
            if rank is None:
                continue
            cached = self._last.get(client)
            if cached is not None:
                cseq, crank, ckind, cpayload = cached
                if (seq, rank) < (cseq, crank):
                    continue  # stale retransmit of an older phase
                if (seq, rank, kind) == (cseq, crank, ckind):
                    # Duplicate: answer from the cache, do not re-execute.
                    self.duplicates_answered += 1
                    yield from self._send_response(client, cpayload)
                    continue
            payload = self._handle(client, kind, seq, body)
            self._last[client] = (seq, rank, kind, payload)
            self.requests_handled += 1
            yield from self._send_response(client, payload)

    # -- request handlers --------------------------------------------------
    #
    # Handlers are plain functions (no yields): every mutation of the
    # partition store is atomic w.r.t. crash-pause and other requests.
    # The DRAM cost of the keys touched is charged afterwards, inside
    # _send_response's timed path.

    def _handle(self, client: int, kind: int, seq: int, body: bytes) -> bytes:
        if kind == wire.TXN_READ:
            return self._do_read(client, seq, body)
        if kind == wire.TXN_PREPARE:
            return self._do_prepare(client, seq, body)
        if kind == wire.TXN_VALIDATE:
            return self._do_validate(client, seq, body)
        if kind == wire.TXN_COMMIT:
            return self._do_commit(client, seq)
        if kind == wire.TXN_ABORT:
            return self._do_abort(client, seq)
        if kind == wire.TXN_ONE:
            return self._do_one(client, seq, body)
        if kind == wire.Q_ENQ:
            return self._do_enqueue(client, seq, body)
        if kind == wire.Q_DEQ:
            return self._do_dequeue(client, seq)
        raise ValueError("unknown request kind %d" % kind)

    def _owner(self, client: int, seq: int) -> int:
        # Nonzero, disjoint from the one-sided owner space (bit 63 set
        # there), unique per (client, attempt).
        return ((client + 1) << 32) | (seq & 0xFFFFFFFF)

    def _do_read(self, client: int, seq: int, body: bytes) -> bytes:
        keys, _ = wire.decode_keys(body)
        items = []
        for key in keys:
            _, version, value = self.store.read_slot(key)
            items.append((key, version, value))
        self._charge_keys = len(keys)
        return wire.encode_response(
            wire.TXN_READ, seq, wire.ST_OK, self.index, wire.encode_read_items(items)
        )

    def _do_prepare(self, client: int, seq: int, body: bytes) -> bytes:
        """Lock + stage the write set; vote on lock conflicts only.

        Read validation deliberately does NOT happen here: the client
        sends ``TXN_VALIDATE`` once *every* partition's locks are held.
        Validating during the lock round would let two transactions
        cross-validate each other's write keys before either locked
        them — distributed write skew.
        """
        _reads, writes = wire.decode_prepare(body, self.value_bytes)
        owner = self._owner(client, seq)
        acquired: List[int] = []
        ok = True
        for key, _ in sorted(writes):
            if self.store.try_lock(key, owner):
                acquired.append(key)
            else:
                ok = False
                break
        self._charge_keys = len(writes)
        if not ok:
            for key in acquired:
                self.store.unlock(key, owner)
            self.prepares_rejected += 1
            return wire.encode_response(wire.TXN_PREPARE, seq, wire.ST_VOTE_NO, self.index)
        if writes:
            self._staged[(client, seq)] = list(writes)
        return wire.encode_response(wire.TXN_PREPARE, seq, wire.ST_OK, self.index)

    def _do_validate(self, client: int, seq: int, body: bytes) -> bytes:
        """OCC read validation, run after the transaction holds all locks."""
        reads, _writes = wire.decode_prepare(body, self.value_bytes)
        owner = self._owner(client, seq)
        self._charge_keys = len(reads)
        for key, expected in reads:
            lock = self.store.read_lock(key)
            if self.store.read_version(key) != expected or lock not in (0, owner):
                self.prepares_rejected += 1
                return wire.encode_response(
                    wire.TXN_VALIDATE, seq, wire.ST_VOTE_NO, self.index
                )
        return wire.encode_response(wire.TXN_VALIDATE, seq, wire.ST_OK, self.index)

    def _do_commit(self, client: int, seq: int) -> bytes:
        tag = (client, seq)
        writes = self._staged.pop(tag, None)
        if writes is not None:
            owner = self._owner(client, seq)
            for key, value in writes:
                self.store.apply(key, value)
                self.store.unlock(key, owner)
            self._applied.add(tag)
            self.commits_applied += 1
            self._charge_keys = len(writes)
        else:
            # Duplicate commit after the dedup cache moved on, or a
            # commit for a read-only partition: idempotent OK.
            self._charge_keys = 0
        return wire.encode_response(wire.TXN_COMMIT, seq, wire.ST_OK, self.index)

    def _do_abort(self, client: int, seq: int) -> bytes:
        writes = self._staged.pop((client, seq), None)
        if writes is not None:
            owner = self._owner(client, seq)
            for key, _ in writes:
                self.store.unlock(key, owner)
            self._charge_keys = len(writes)
        else:
            self._charge_keys = 0
        return wire.encode_response(wire.TXN_ABORT, seq, wire.ST_OK, self.index)

    def _do_one(self, client: int, seq: int, body: bytes) -> bytes:
        """Single-partition one-shot: read + validate + apply, atomically.

        The entire transaction executes inside this handler, so there is
        nothing to validate against concurrent RPC transactions — but a
        *multi-partition* transaction may hold write locks here, and the
        one-shot must respect them or serializability breaks.
        """
        read_keys, writes = wire.decode_one(body, self.value_bytes)
        self._charge_keys = len(read_keys) + len(writes)
        for key, _ in writes:
            if self.store.read_lock(key) != 0:
                self.prepares_rejected += 1
                return wire.encode_response(wire.TXN_ONE, seq, wire.ST_VOTE_NO, self.index)
        items = []
        for key in read_keys:
            lock, version, value = self.store.read_slot(key)
            if lock != 0:
                # A prepared-but-uncommitted txn owns a read key: its
                # install is imminent; refuse rather than read stale.
                self.prepares_rejected += 1
                return wire.encode_response(wire.TXN_ONE, seq, wire.ST_VOTE_NO, self.index)
            items.append((key, version, value))
        for key, value in writes:
            self.store.apply(key, value)
        self.commits_applied += 1
        return wire.encode_response(
            wire.TXN_ONE, seq, wire.ST_OK, self.index, wire.encode_read_items(items)
        )

    # -- FIFO queue ops (server-side remote data structure) ---------------

    def _do_enqueue(self, client: int, seq: int, body: bytes) -> bytes:
        item = wire.decode_u64(body)
        ticket = self._q_next_ticket
        self._q_next_ticket += 1
        self._queue.append((ticket, item))
        self._charge_keys = 1
        return wire.encode_response(
            wire.Q_ENQ, seq, wire.ST_OK, self.index, wire.encode_u64(ticket)
        )

    def _do_dequeue(self, client: int, seq: int) -> bytes:
        self._charge_keys = 1
        if not self._queue:
            return wire.encode_response(wire.Q_DEQ, seq, wire.ST_EMPTY, self.index)
        ticket, item = self._queue.popleft()
        return wire.encode_response(
            wire.Q_DEQ, seq, wire.ST_OK, self.index,
            wire.encode_u64(ticket) + wire.encode_u64(item),
        )

    # -- response path -----------------------------------------------------

    def _send_response(self, client: int, payload: bytes) -> Generator[Event, None, None]:
        p = self.profile
        charge = getattr(self, "_charge_keys", 0)
        if charge:
            yield self.sim.timeout(charge * p.dram_ns)
            self._charge_keys = 0
        ah = self.client_ahs[client]
        if len(payload) <= p.max_inline:
            wr = WorkRequest.send(payload=payload, inline=True, signaled=False, ah=ah)
        else:
            if self._staging_cursor + len(payload) > _STAGING_BYTES:
                self._staging_cursor = 0
            off = self._staging_cursor
            self._staging.write(off, payload)
            self._staging_cursor += len(payload)
            wr = WorkRequest.send(
                local=(self._staging, off, len(payload)), signaled=False, ah=ah
            )
        yield from self.device.post_send_timed(self.ud_qp, wr)
