"""The transaction cluster: both dataplanes over one partitioned store.

One server machine hosts ``n_partitions`` partition stores and (for the
RPC dataplane) one :class:`~repro.txn.server.TxnServerProcess` per
partition.  Clients on separate machines run closed-loop multi-key
transactions through the dataplane named by ``TxnConfig.dataplane``:

* ``"rpc"`` — HERD-style server-mediated two-phase commit (UC request
  WRITEs in, UD SEND responses out, ``TXN_ONE`` one-shots for
  single-partition updates);
* ``"onesided"`` — client-driven lock/validate/install over RC verbs,
  locking with ``ATOMIC_CMP_AND_SWP`` and never involving a server CPU.

:meth:`TxnCluster.run` returns a :class:`TxnReport` that bundles the
usual throughput/latency result with the correctness audits the ISSUE
demands: the Wing–Gong serializability check over the full recorded
history (with the final store state as a synthetic read), a torn-write
audit that attributes every final byte to a committed transaction, and
a determinism fingerprint over the committed history + final state.

The optional crash arm pauses one participant process mid-run (HERD
pause model: memory survives).  On the RPC dataplane clients ride it
out with idempotent retries; on the one-sided dataplane commits keep
flowing because the dataplane never needed that CPU — the
``commits_in_outage`` field makes the contrast measurable.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bench.result import RunResult, collect
from repro.faults.rng import child_rng
from repro.ha.checker import TxnRecord, check_serializable
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.sim import LatencyRecorder, RateMeter, Simulator
from repro.txn.client import TxnClientProcess, parse_value
from repro.txn.server import TxnServerProcess
from repro.txn.store import TxnPartitionStore
from repro.verbs import RdmaDevice, Transport

DATAPLANES = ("rpc", "onesided")


@dataclass(frozen=True)
class TxnConfig:
    """Workload + protocol knobs for one transaction experiment."""

    dataplane: str = "rpc"
    n_partitions: int = 2
    n_keys: int = 256
    keys_per_txn: int = 3
    #: the first ``writes_per_txn`` picked keys are written (a txn's
    #: write set is always a subset of its read set)
    writes_per_txn: int = 2
    read_only_fraction: float = 0.5
    #: probability a transaction draws all its keys from the hot set
    hot_fraction: float = 0.0
    #: hot keys are {0, P, 2P, ...}: all in partition 0, so hot
    #: transactions are single-partition by construction
    n_hot: int = 4
    value_bytes: int = 24
    rpc_timeout_ns: float = 30_000.0
    backoff_ns: float = 1_500.0
    #: crash arm: (partition, at_ns, down_ns) pauses that participant
    crash: Optional[Tuple[int, float, float]] = None

    def __post_init__(self) -> None:
        if self.dataplane not in DATAPLANES:
            raise ValueError(
                "unknown dataplane %r; expected one of %s"
                % (self.dataplane, ", ".join(DATAPLANES))
            )
        if self.writes_per_txn > self.keys_per_txn:
            raise ValueError("writes_per_txn cannot exceed keys_per_txn")
        if self.hot_fraction > 0 and self.n_hot < self.keys_per_txn:
            # a hot transaction draws all its (distinct) keys from the
            # hot set, so a smaller set can never complete the draw
            raise ValueError("n_hot must be >= keys_per_txn when hot_fraction > 0")

    @property
    def req_slot_bytes(self) -> int:
        """Request-region slot: sized for the largest request."""
        worst = 16 + self.keys_per_txn * 12 + self.writes_per_txn * (4 + self.value_bytes)
        return -(-worst // 64) * 64

    @property
    def resp_slot_bytes(self) -> int:
        worst = 16 + self.keys_per_txn * (12 + self.value_bytes)
        return max(256, -(-worst // 64) * 64)


@dataclass
class TxnReport:
    """Everything one transaction run measured and proved."""

    dataplane: str
    result: RunResult
    commits: int
    aborts: int
    abort_rate: float
    #: None = serializable; else the checker's reason string
    violation: Optional[str]
    torn_writes: int
    #: sha256 over the committed history + final store state
    fingerprint: str
    #: commits whose acknowledgement landed inside the crash window
    commits_in_outage: int = 0
    retries: int = 0
    server_counters: Dict[str, int] = field(default_factory=dict)

    @property
    def serializable(self) -> bool:
        return self.violation is None

    @property
    def ok(self) -> bool:
        return self.serializable and self.torn_writes == 0

    def summary(self) -> str:
        lat = self.result.latency
        return (
            "txn[%s]: %.3f Mtxn/s, %d commits, %d aborts (%.1f%%), "
            "p50 %.1f us, p99 %.1f us, serializable=%s, torn=%d"
            % (
                self.dataplane, self.result.mops, self.commits, self.aborts,
                100.0 * self.abort_rate, lat.get("p50_us", 0.0), lat.get("p99_us", 0.0),
                self.serializable, self.torn_writes,
            )
        )


class TxnCluster:
    """A transaction deployment on either commit dataplane."""

    def __init__(
        self,
        config: Optional[TxnConfig] = None,
        profile: HardwareProfile = APT,
        n_clients: int = 8,
        n_client_machines: int = 4,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else TxnConfig()
        self.seed = seed
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        cfg = self.config
        self.stores = [
            TxnPartitionStore(
                self.server_device, p, cfg.n_partitions, cfg.n_keys, cfg.value_bytes
            )
            for p in range(cfg.n_partitions)
        ]
        self.servers = [
            TxnServerProcess(p, self.server_device, self.stores[p], cfg.value_bytes)
            for p in range(cfg.n_partitions)
        ]
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.clients: List[TxnClientProcess] = []
        self._n_clients = n_clients
        if cfg.dataplane == "rpc":
            self._regions = []
            for p, server in enumerate(self.servers):
                region = self.server_device.register_memory(
                    max(1, n_clients) * cfg.req_slot_bytes
                )
                region.on_write = self._request_landed(server)
                server.region = region
                server.req_slot_bytes = cfg.req_slot_bytes
                server.ud_qp = self.server_device.create_qp(Transport.UD)
                self._regions.append(region)
        self._wire(n_clients, seed)
        #: commit ack timestamps, for the crash-window count
        self._commit_times: List[float] = []
        #: fault injector, when install_faults() was called
        self._injector = None

    def _request_landed(self, server: TxnServerProcess):
        slot = self.config.req_slot_bytes

        def on_write(offset: int, _length: int) -> None:
            server.arrivals.put(offset // slot)

        return on_write

    def _wire(self, n_clients: int, seed: int) -> None:
        cfg = self.config
        for cid in range(n_clients):
            device = self.client_devices[cid % len(self.client_devices)]
            rng = child_rng(seed, "txn.client.%d" % cid)
            client = TxnClientProcess(cid, device, cfg, rng)
            if cfg.dataplane == "rpc":
                s_uc = self.server_device.create_qp(Transport.UC)
                c_uc = device.create_qp(Transport.UC)
                s_uc.connect(device.machine.name, c_uc.qpn)
                c_uc.connect("server", s_uc.qpn)
                client.rpc.uc_qp = c_uc
                for p, region in enumerate(self._regions):
                    client.rpc.req_slots[p] = (
                        region.addr + cid * cfg.req_slot_bytes,
                        region.rkey,
                    )
                for server in self.servers:
                    assert len(server.client_ahs) == cid
                    server.client_ahs.append(
                        (device.machine.name, client.rpc.ud_qp.qpn)
                    )
            else:
                s_rc = self.server_device.create_qp(Transport.RC)
                c_rc = device.create_qp(Transport.RC)
                s_rc.connect(device.machine.name, c_rc.qpn)
                c_rc.connect("server", s_rc.qpn)
                client.rc_qp = c_rc
                for p, store in enumerate(self.stores):
                    client.store_slots[p] = (store.mr.addr, store.mr.rkey)
            self.clients.append(client)

    # ------------------------------------------------------------------

    def install_faults(self, plan):
        """Install a :class:`~repro.faults.plan.FaultPlan` on the
        cluster's fabric and devices (the nemesis path).

        Crash rules are not supported here — a transaction crash arm is
        expressed as ``TxnConfig.crash``, which pauses a participant
        process; plan-level crash rules target HERD server processes.
        The injector is deactivated at the measurement horizon by
        :meth:`run`, so the drain (and therefore the audited history's
        tail) is fault-free, mirroring the chaos harness.
        """
        from repro.faults.injector import FaultInjector

        if plan.crashes:
            raise ValueError(
                "crash rules must be mapped onto TxnConfig.crash; "
                "the txn fabric injector cannot crash HERD servers"
            )
        devices = {"server": self.server_device}
        for device in self.client_devices:
            devices[device.machine.name] = device
        for device in devices.values():
            # The one-sided commit protocol pipelines WRITEs on RC and
            # relies on the transport's in-order exactly-once contract
            # (there is no CPU on the path to re-sequence at the app
            # layer).  The fabric injector acts *below* PSN on real
            # hardware, so model the PSN machinery whenever faults are
            # installed here; without faults the flag is moot.
            device.enforce_rc_ordering = True
        self._injector = FaultInjector(plan, self.fabric, devices=devices)
        return self._injector

    def run(self, warmup_ns: float = 20_000.0, measure_ns: float = 150_000.0) -> TxnReport:
        cfg = self.config
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        metrics = getattr(self.sim, "metrics", None)

        def commit_hook(now: float) -> None:
            self._commit_times.append(now)
            if metrics is not None:
                metrics.counter("txn.commits").inc()

        def abort_hook(_now: float) -> None:
            if metrics is not None:
                metrics.counter("txn.aborts").inc()

        for client in self.clients:
            def hook(now, latency, _m=meter, _l=latencies):
                _m.record(now)
                _l.record(now, latency)

            client.completed_hook = hook
            client.commit_hook = commit_hook
            client.abort_hook = abort_hook
            client.stop_at = window_end
            client.start()
        if cfg.dataplane == "rpc":
            for server in self.servers:
                server.start()
        if cfg.crash is not None:
            partition, at_ns, down_ns = cfg.crash
            server = self.servers[partition]
            self.sim.call_in(at_ns, server.crash)
            self.sim.call_in(at_ns + down_ns, server.recover)
        if self._injector is not None:
            self.sim.call_in(window_end, self._injector.deactivate)
        self.sim.run(until=window_end)
        # Drain: clients stop starting transactions at the horizon but
        # in-flight ones complete, so the audited history has no
        # artificially torn tails.
        self.sim.run_until_idle()
        return self._report(meter, latencies, measure_ns)

    # -- audits --------------------------------------------------------

    def _final_state(self) -> Dict[int, bytes]:
        out: Dict[int, bytes] = {}
        for store in self.stores:
            for key, (_version, value) in store.scan().items():
                out[key] = value
        return out

    def _torn_writes(self, history: List[TxnRecord], final: Dict[int, bytes]) -> int:
        """Final values that no committed/pending transaction explains."""
        legal: Dict[Tuple[int, int], set] = {}
        for txn in history:
            if txn.status == "aborted":
                continue
            for key, _value in txn.writes:
                legal.setdefault((txn.client, txn.txn_id % 1_000_000), set()).add(key)
        torn = 0
        for key, value in final.items():
            tag = parse_value(value)
            if tag is None:
                continue  # initial zeros: never written
            client, seq, tagged_key = tag
            if tagged_key != key or key not in legal.get((client, seq), ()):
                torn += 1
        return torn

    def _fingerprint(self, history: List[TxnRecord], final: Dict[int, bytes]) -> str:
        h = hashlib.sha256()
        for txn in sorted(history, key=lambda t: (t.client, t.txn_id)):
            h.update(
                repr((txn.txn_id, txn.client, txn.status, txn.invoke, txn.respond,
                      txn.reads, txn.writes)).encode()
            )
        for key in sorted(final):
            h.update(b"%d:" % key + final[key])
        return h.hexdigest()

    def _report(self, meter: RateMeter, latencies: LatencyRecorder,
                measure_ns: float) -> TxnReport:
        cfg = self.config
        history: List[TxnRecord] = []
        for client in self.clients:
            history.extend(client.history)
        commits = sum(c.commits for c in self.clients)
        aborts = sum(c.aborts for c in self.clients)
        attempts = commits + aborts
        final = self._final_state()
        initial = {k: b"\x00" * cfg.value_bytes for k in range(cfg.n_keys)}
        violation = check_serializable(history, initial=initial, final=final)
        torn = self._torn_writes(history, final)
        commits_in_outage = 0
        if cfg.crash is not None:
            _partition, at_ns, down_ns = cfg.crash
            commits_in_outage = sum(
                1 for t in self._commit_times if at_ns <= t < at_ns + down_ns
            )
        retries = 0
        if cfg.dataplane == "rpc":
            retries = sum(c.rpc.retries for c in self.clients)
        server_counters = {
            "requests_handled": sum(s.requests_handled for s in self.servers),
            "commits_applied": sum(s.commits_applied for s in self.servers),
            "prepares_rejected": sum(s.prepares_rejected for s in self.servers),
            "duplicates_answered": sum(s.duplicates_answered for s in self.servers),
            "atomics_served": self.server_device.atomics_served,
        }
        return TxnReport(
            dataplane=cfg.dataplane,
            result=collect(meter, latencies, measure_ns),
            commits=commits,
            aborts=aborts,
            abort_rate=aborts / attempts if attempts else 0.0,
            violation=violation,
            torn_writes=torn,
            fingerprint=self._fingerprint(history, final),
            commits_in_outage=commits_in_outage,
            retries=retries,
            server_counters=server_counters,
        )
