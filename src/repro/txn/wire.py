"""Wire formats for the transaction RPC dataplane.

Requests travel as HERD-style UC WRITEs into a per-(partition, client)
request-region slot; responses come back as UD SENDs.  Every message is
framed with a fixed header so duplicate detection (client retries, the
crash-pause arm) works on (seq, kind) alone:

* request:  ``[kind u8][seq u32][body len u16][body]``
* response: ``[kind u8][seq u32][status u8][partition u8][body]``

Bodies use fixed-size records — the value size is a cluster constant —
so encode/decode never needs a schema side channel.
"""

from __future__ import annotations

import struct
from typing import Iterable, List, Sequence, Tuple

# request kinds (0 = empty slot, never a valid request)
TXN_READ = 1      # read keys: versions + values
TXN_PREPARE = 2   # lock + stage the write set, vote (no read validation)
TXN_VALIDATE = 3  # validate read versions *after all locks are held*
TXN_COMMIT = 4    # apply staged writes, release locks
TXN_ABORT = 5     # drop staged writes, release locks
TXN_ONE = 6       # single-partition one-shot: read + apply atomically
Q_ENQ = 7         # FIFO queue enqueue (server-side data structure op)
Q_DEQ = 8         # FIFO queue dequeue

#: commit phases must supersede earlier phases of the same seq when the
#: server dedups retried requests.  VALIDATE strictly follows PREPARE
#: (every write lock is held before any read is validated — the FaRM
#: ordering that makes distributed OCC serializable; validating during
#: the lock round admits a cross-partition write-skew cycle).
PHASE_RANK = {TXN_READ: 0, TXN_PREPARE: 1, TXN_VALIDATE: 2,
              TXN_COMMIT: 3, TXN_ABORT: 3,
              TXN_ONE: 1, Q_ENQ: 1, Q_DEQ: 1}

# response statuses
ST_OK = 0
ST_VOTE_NO = 1   # prepare lost a lock race or failed read validation
ST_EMPTY = 2     # queue dequeue found no elements

_REQ_HDR = struct.Struct("<BIH")
_RESP_HDR = struct.Struct("<BIBB")
_KEY = struct.Struct("<I")
_KEYVER = struct.Struct("<IQ")
_COUNT = struct.Struct("<H")
_U64 = struct.Struct("<Q")

REQ_HDR_BYTES = _REQ_HDR.size
RESP_HDR_BYTES = _RESP_HDR.size


def encode_request(kind: int, seq: int, body: bytes = b"") -> bytes:
    return _REQ_HDR.pack(kind, seq, len(body)) + body


def decode_request(buf: bytes) -> Tuple[int, int, bytes]:
    kind, seq, blen = _REQ_HDR.unpack_from(buf)
    return kind, seq, bytes(buf[REQ_HDR_BYTES:REQ_HDR_BYTES + blen])


def encode_response(kind: int, seq: int, status: int, partition: int,
                    body: bytes = b"") -> bytes:
    return _RESP_HDR.pack(kind, seq, status, partition) + body


def decode_response(buf: bytes) -> Tuple[int, int, int, int, bytes]:
    kind, seq, status, partition = _RESP_HDR.unpack_from(buf)
    return kind, seq, status, partition, bytes(buf[RESP_HDR_BYTES:])


# -- bodies -----------------------------------------------------------------


def encode_keys(keys: Sequence[int]) -> bytes:
    return _COUNT.pack(len(keys)) + b"".join(_KEY.pack(k) for k in keys)


def decode_keys(body: bytes, offset: int = 0) -> Tuple[List[int], int]:
    (n,) = _COUNT.unpack_from(body, offset)
    offset += _COUNT.size
    keys = []
    for _ in range(n):
        (k,) = _KEY.unpack_from(body, offset)
        keys.append(k)
        offset += _KEY.size
    return keys, offset


def encode_prepare(reads: Iterable[Tuple[int, int]],
                   writes: Iterable[Tuple[int, bytes]]) -> bytes:
    """``reads`` = (key, expected version); ``writes`` = (key, value)."""
    reads = list(reads)
    writes = list(writes)
    out = [_COUNT.pack(len(reads))]
    out += [_KEYVER.pack(k, v) for k, v in reads]
    out.append(_COUNT.pack(len(writes)))
    out += [_KEY.pack(k) + value for k, value in writes]
    return b"".join(out)


def decode_prepare(body: bytes, value_bytes: int
                   ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, bytes]]]:
    (n,) = _COUNT.unpack_from(body, 0)
    offset = _COUNT.size
    reads = []
    for _ in range(n):
        k, v = _KEYVER.unpack_from(body, offset)
        reads.append((k, v))
        offset += _KEYVER.size
    (m,) = _COUNT.unpack_from(body, offset)
    offset += _COUNT.size
    writes = []
    for _ in range(m):
        (k,) = _KEY.unpack_from(body, offset)
        offset += _KEY.size
        writes.append((k, bytes(body[offset:offset + value_bytes])))
        offset += value_bytes
    return reads, writes


def encode_one(read_keys: Sequence[int],
               writes: Iterable[Tuple[int, bytes]]) -> bytes:
    """One-shot body: bare read keys plus the write set."""
    writes = list(writes)
    out = [encode_keys(read_keys), _COUNT.pack(len(writes))]
    out += [_KEY.pack(k) + value for k, value in writes]
    return b"".join(out)


def decode_one(body: bytes, value_bytes: int
               ) -> Tuple[List[int], List[Tuple[int, bytes]]]:
    keys, offset = decode_keys(body, 0)
    (m,) = _COUNT.unpack_from(body, offset)
    offset += _COUNT.size
    writes = []
    for _ in range(m):
        (k,) = _KEY.unpack_from(body, offset)
        offset += _KEY.size
        writes.append((k, bytes(body[offset:offset + value_bytes])))
        offset += value_bytes
    return keys, writes


def encode_read_items(items: Iterable[Tuple[int, int, bytes]]) -> bytes:
    """Read results: (key, version, value) fixed-size records."""
    return b"".join(_KEYVER.pack(k, ver) + value for k, ver, value in items)


def decode_read_items(body: bytes, value_bytes: int
                      ) -> List[Tuple[int, int, bytes]]:
    record = _KEYVER.size + value_bytes
    items = []
    for offset in range(0, len(body), record):
        k, ver = _KEYVER.unpack_from(body, offset)
        value = bytes(body[offset + _KEYVER.size:offset + record])
        items.append((k, ver, value))
    return items


def encode_u64(value: int) -> bytes:
    return _U64.pack(value)


def decode_u64(body: bytes, offset: int = 0) -> int:
    return _U64.unpack_from(body, offset)[0]
