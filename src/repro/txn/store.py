"""Per-partition versioned slot store shared by both commit dataplanes.

Each key owns a fixed slot inside the partition's registered region::

    [ lock u64 ][ version u64 ][ value value_bytes ]

* ``lock`` — 0 when free, else the owner token of the transaction that
  holds it.  The RPC server mutates it CPU-side; the one-sided dataplane
  CASes it with verbs atomics.  The two interoperate because both go
  through the same bytes.
* ``version`` — bumped by one on every committed install; OCC read
  validation compares versions.
* ``value`` — the payload, installed together with the version + lock
  release in one WRITE on the one-sided path so a concurrent READ never
  sees a half-written slot boundary (the simulator copies packets
  atomically, as the NIC's DMA does per slot-sized payloads).

Keys are spread round-robin: key *k* lives in partition ``k % P`` at
local index ``k // P``.  Addresses are exposed so one-sided clients can
compute ``slot_addr(k)`` with pure arithmetic — no RPC needed to locate
data, which is the whole point of that dataplane.
"""

from __future__ import annotations

import struct
from typing import Dict, Iterator, Tuple

LOCK_OFF = 0
VER_OFF = 8
VAL_OFF = 16
SLOT_HDR_BYTES = 16

_U64 = struct.Struct("<Q")
_HDR = struct.Struct("<QQ")


class TxnPartitionStore:
    """One partition's keys, versions, and lock words in a registered MR."""

    def __init__(self, device, partition: int, n_partitions: int,
                 n_keys: int, value_bytes: int) -> None:
        if not 0 <= partition < n_partitions:
            raise ValueError("partition %d out of range" % partition)
        self.partition = partition
        self.n_partitions = n_partitions
        self.n_keys = n_keys
        self.value_bytes = value_bytes
        self.slot_bytes = SLOT_HDR_BYTES + value_bytes
        #: number of keys this partition owns
        self.n_local = len(range(partition, n_keys, n_partitions))
        self.mr = device.register_memory(max(1, self.n_local) * self.slot_bytes)

    # -- geometry ----------------------------------------------------------

    def owns(self, key: int) -> bool:
        return 0 <= key < self.n_keys and key % self.n_partitions == self.partition

    def slot_offset(self, key: int) -> int:
        if not self.owns(key):
            raise KeyError("key %d not owned by partition %d" % (key, self.partition))
        return (key // self.n_partitions) * self.slot_bytes

    def slot_addr(self, key: int) -> int:
        return self.mr.addr + self.slot_offset(key)

    def local_keys(self) -> Iterator[int]:
        return iter(range(self.partition, self.n_keys, self.n_partitions))

    # -- CPU-side access (RPC server, audits) ------------------------------

    def read_slot(self, key: int) -> Tuple[int, int, bytes]:
        """(lock, version, value) for ``key``."""
        off = self.slot_offset(key)
        lock, version = _HDR.unpack_from(self.mr.buf, off)
        value = self.mr.read(off + VAL_OFF, self.value_bytes)
        return lock, version, value

    def read_lock(self, key: int) -> int:
        return _U64.unpack_from(self.mr.buf, self.slot_offset(key) + LOCK_OFF)[0]

    def read_version(self, key: int) -> int:
        return _U64.unpack_from(self.mr.buf, self.slot_offset(key) + VER_OFF)[0]

    def try_lock(self, key: int, owner: int) -> bool:
        """CPU-side test-and-set; True if now held by ``owner``."""
        if owner == 0:
            raise ValueError("owner token must be nonzero")
        off = self.slot_offset(key) + LOCK_OFF
        (current,) = _U64.unpack_from(self.mr.buf, off)
        if current == 0 or current == owner:
            self.mr.write(off, _U64.pack(owner))
            return True
        return False

    def unlock(self, key: int, owner: int) -> None:
        off = self.slot_offset(key) + LOCK_OFF
        (current,) = _U64.unpack_from(self.mr.buf, off)
        if current == owner:
            self.mr.write(off, _U64.pack(0))

    def apply(self, key: int, value: bytes) -> None:
        """Install ``value`` and bump the version (lock word untouched)."""
        if len(value) != self.value_bytes:
            raise ValueError("value must be exactly %d bytes" % self.value_bytes)
        off = self.slot_offset(key)
        (version,) = _U64.unpack_from(self.mr.buf, off + VER_OFF)
        self.mr.write(off + VER_OFF, _U64.pack(version + 1))
        self.mr.write(off + VAL_OFF, value)

    def scan(self) -> Dict[int, Tuple[int, bytes]]:
        """{key: (version, value)} for the final-state audit."""
        out = {}
        for key in self.local_keys():
            _, version, value = self.read_slot(key)
            out[key] = (version, value)
        return out


def parse_slot(raw: bytes, value_bytes: int) -> Tuple[int, int, bytes]:
    """Decode a slot image fetched by a one-sided READ."""
    lock, version = _HDR.unpack_from(raw, 0)
    return lock, version, bytes(raw[VAL_OFF:VAL_OFF + value_bytes])


def pack_install(version: int, value: bytes) -> bytes:
    """The one-sided install image: lock released, version bumped, value."""
    return _HDR.pack(0, version) + value


def pack_header(lock: int, version: int) -> bytes:
    return _HDR.pack(lock, version)


def parse_header(raw: bytes) -> Tuple[int, int]:
    lock, version = _HDR.unpack_from(raw, 0)
    return lock, version
