"""Pilaf-em-OPT: the emulated Pilaf comparison system (Section 5.1.1).

Pilaf's protocol:

* **GET** — the client traverses the server's 3-1 cuckoo hash table
  with RDMA READs: 1.6 bucket READs on average (32-byte buckets), then
  a READ of the value from the extents.  The second candidate bucket is
  read only if the first probe misses — lower throughput than issuing
  both concurrently, but that is the configuration the paper evaluates.
* **PUT** — the client SENDs the SK+SV-byte item to the server, which
  answers with a SEND.

Following the paper's methodology, the emulation omits Pilaf's backing
data structures (the server answers instantly, giving Pilaf the maximum
possible advantage) but performs every network and NIC step for real.
"OPT" means all of the paper's optimizations are applied to the
messaging legs: inlining and selective signaling (the READ path needs
RC, so the whole QP is RC, as in Pilaf).

Each client process keeps ``window`` operations in flight, pipelined on
**one** RC queue pair — like Pilaf's asynchronous clients — so the
server holds NC connected QPs, not NC * window.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.bench.result import RunResult, collect
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.kv.hashing import hash_key
from repro.sim import Event, LatencyRecorder, RateMeter, Simulator, Store
from repro.verbs import (
    CompletionQueue,
    QueuePair,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)
from repro.workloads.ycsb import Workload, WorkloadStream

BUCKET_BYTES = 32
_RECV_SLOT = 40 + 2048


@dataclass(frozen=True)
class PilafConfig:
    key_bytes: int = 16
    value_bytes: int = 32
    #: average cuckoo probes per GET at 75% occupancy (Section 5.1.1)
    avg_probes: float = 1.6
    #: operations each client process keeps in flight
    window: int = 4
    n_server_processes: int = 6


class _PilafClientProcess:
    """A client process: one RC QP, ``window`` pipelined operations."""

    def __init__(
        self,
        cid: int,
        device: RdmaDevice,
        config: PilafConfig,
        stream: WorkloadStream,
        seed: int,
    ) -> None:
        self.cid = cid
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.stream = stream
        self._rng = random.Random(seed)
        self.qp: Optional[QueuePair] = None
        self.table_addr = 0
        self.table_rkey = 0
        self.table_bytes = 0
        self.extents_addr = 0
        self.extents_rkey = 0
        self.extents_bytes = 0
        self.sink = device.register_memory(config.window * 4096)
        self._staging = device.register_memory(config.window * 2048)
        self.recv_mr = device.register_memory(2 * config.window * _RECV_SLOT)
        #: per-lane completion mailboxes, fed by the dispatchers
        self._read_done = [Store(self.sim) for _ in range(config.window)]
        self._resp_done = [Store(self.sim) for _ in range(config.window)]
        self.completed_hook = None
        self.gets = 0
        self.puts = 0
        self.probes_issued = 0

    def start(self) -> None:
        self.sim.process(self._dispatch_sends(), name="pilaf-c%d-scq" % self.cid)
        self.sim.process(self._dispatch_recvs(), name="pilaf-c%d-rcq" % self.cid)
        for lane in range(self.config.window):
            self.sim.process(self._lane(lane), name="pilaf-c%d-l%d" % (self.cid, lane))

    # -- completion routing -------------------------------------------------

    def _dispatch_sends(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.qp.send_cq.pop()
            self._read_done[cqe.wr_id].put(cqe)

    def _dispatch_recvs(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.qp.recv_cq.pop()
            self._resp_done[cqe.wr_id % self.config.window].put(cqe)

    # -- operation lanes -------------------------------------------------------

    def _lane(self, lane: int) -> Generator[Event, None, None]:
        while True:
            op = self.stream.next_op()
            started = self.sim.now
            if op.is_get:
                yield from self._get(lane, op.key)
                self.gets += 1
            else:
                yield from self._put(lane, op.key, op.value)
                self.puts += 1
            if self.completed_hook is not None:
                self.completed_hook(self.sim.now, self.sim.now - started)

    def _probe_count(self) -> int:
        """1 or 2 bucket probes, averaging ``avg_probes``."""
        extra = self.config.avg_probes - 1.0
        return 2 if self._rng.random() < extra else 1

    def _get(self, lane: int, key: bytes) -> Generator[Event, None, None]:
        for probe in range(self._probe_count()):
            bucket = hash_key(key, probe) % (self.table_bytes // BUCKET_BYTES)
            wr = WorkRequest.read(
                raddr=self.table_addr + bucket * BUCKET_BYTES,
                rkey=self.table_rkey,
                local=(self.sink, lane * 4096, BUCKET_BYTES),
                wr_id=lane,
            )
            yield from self.device.post_send_timed(self.qp, wr)
            yield self._read_done[lane].get()
            yield self.sim.timeout(self.profile.cq_poll_ns)
            self.probes_issued += 1
        # Follow the pointer: READ the value from the extents.
        value_len = self.config.value_bytes
        offset = hash_key(key, 7) % max(1, self.extents_bytes - value_len)
        wr = WorkRequest.read(
            raddr=self.extents_addr + offset,
            rkey=self.extents_rkey,
            local=(self.sink, lane * 4096 + 64, value_len),
            wr_id=lane,
        )
        yield from self.device.post_send_timed(self.qp, wr)
        yield self._read_done[lane].get()
        yield self.sim.timeout(self.profile.cq_poll_ns)

    def _put(self, lane: int, key: bytes, value: bytes) -> Generator[Event, None, None]:
        offset = lane * _RECV_SLOT
        yield from self.device.post_recv_timed(
            self.qp,
            RecvRequest(wr_id=lane, local=(self.recv_mr, offset, _RECV_SLOT)),
        )
        payload = key + value
        if len(payload) <= self.profile.max_inline:
            wr = WorkRequest.send(payload=payload, inline=True, signaled=False)
        else:
            self._staging.write(lane * 2048, payload)
            wr = WorkRequest.send(
                local=(self._staging, lane * 2048, len(payload)), signaled=False
            )
        yield from self.device.post_send_timed(self.qp, wr)
        yield self._resp_done[lane].get()
        yield self.sim.timeout(self.profile.cq_poll_ns)


class _PilafServerProcess:
    """A server core handling the PUT path (GETs bypass the CPU)."""

    def __init__(self, index: int, device: RdmaDevice) -> None:
        self.index = index
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.recv_cq = CompletionQueue(self.sim, "ps%d.rcq" % index)
        #: per assigned client process: recv_qp, recv_mr
        self.clients: List[dict] = []
        self.puts_handled = 0

    def start(self) -> None:
        self.sim.process(self.run(), name="pilaf-server-%d" % self.index)

    def run(self) -> Generator[Event, None, None]:
        p = self.profile
        while True:
            cqe = yield self.recv_cq.pop()
            yield self.sim.timeout(p.cq_poll_ns)
            client_index, slot = divmod(cqe.wr_id, 1 << 16)
            state = self.clients[client_index]
            # Repost the consumed RECV (the CPU cost the paper calls out
            # as Pilaf's disadvantage against FaRM's polled region).
            yield from self.device.post_recv_timed(
                state["recv_qp"],
                RecvRequest(
                    wr_id=cqe.wr_id,
                    local=(state["recv_mr"], slot * _RECV_SLOT, _RECV_SLOT),
                ),
            )
            # Emulated: no hash-table insert; reply immediately.
            wr = WorkRequest.send(payload=b"\x01", inline=True, signaled=False)
            yield from self.device.post_send_timed(state["recv_qp"], wr)
            self.puts_handled += 1


class PilafCluster:
    """An emulated Pilaf deployment (Pilaf-em-OPT)."""

    #: hash-table and extent sizes (addresses only; contents are dummy)
    TABLE_BYTES = 1 << 20
    EXTENT_BYTES = 1 << 20

    def __init__(
        self,
        config: Optional[PilafConfig] = None,
        workload: Optional[Workload] = None,
        profile: HardwareProfile = APT,
        n_clients: int = 51,
        n_client_machines: int = 17,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else PilafConfig()
        self.workload = workload if workload is not None else Workload(
            get_fraction=0.95, value_size=self.config.value_bytes
        )
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        self.table = self.server_device.register_memory(self.TABLE_BYTES)
        self.extents = self.server_device.register_memory(self.EXTENT_BYTES)
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.servers = [
            _PilafServerProcess(s, self.server_device)
            for s in range(self.config.n_server_processes)
        ]
        self.clients: List[_PilafClientProcess] = []
        self._wire(n_clients, seed)

    def _wire(self, n_clients: int, seed: int) -> None:
        cfg = self.config
        for cid in range(n_clients):
            device = self.client_devices[cid % len(self.client_devices)]
            stream = self.workload.stream(seed=seed * 7_919 + cid)
            client = _PilafClientProcess(cid, device, cfg, stream, seed=cid + 13)
            sproc = self.servers[cid % len(self.servers)]
            server_qp = self.server_device.create_qp(Transport.RC, recv_cq=sproc.recv_cq)
            client_qp = device.create_qp(Transport.RC)
            server_qp.connect(device.machine.name, client_qp.qpn)
            client_qp.connect("server", server_qp.qpn)
            client.qp = client_qp
            client.table_addr = self.table.addr
            client.table_rkey = self.table.rkey
            client.table_bytes = self.TABLE_BYTES
            client.extents_addr = self.extents.addr
            client.extents_rkey = self.extents.rkey
            client.extents_bytes = self.EXTENT_BYTES
            recv_mr = self.server_device.register_memory(2 * cfg.window * _RECV_SLOT)
            client_index = len(sproc.clients)
            sproc.clients.append({"recv_qp": server_qp, "recv_mr": recv_mr})
            for slot in range(2 * cfg.window):
                self.server_device.post_recv(
                    server_qp,
                    RecvRequest(
                        wr_id=(client_index << 16) | slot,
                        local=(recv_mr, slot * _RECV_SLOT, _RECV_SLOT),
                    ),
                )
            self.clients.append(client)

    # ------------------------------------------------------------------

    def run(self, warmup_ns: float = 30_000.0, measure_ns: float = 150_000.0) -> RunResult:
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        for client in self.clients:
            def hook(now, latency, _m=meter, _l=latencies):
                _m.record(now)
                _l.record(now, latency)

            client.completed_hook = hook
            client.start()
        for server in self.servers:
            server.start()
        self.sim.run(until=window_end)
        gets = sum(c.gets for c in self.clients)
        probes = sum(c.probes_issued for c in self.clients)
        return collect(
            meter,
            latencies,
            measure_ns,
            avg_probes=(probes / gets) if gets else 0.0,
            puts_handled=float(sum(s.puts_handled for s in self.servers)),
        )
