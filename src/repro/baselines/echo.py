"""ECHO servers: every verb pair and optimization level (Figure 5).

An ECHO bounces a client's payload off the server unchanged.  It is the
paper's yardstick: the throughput of the best ECHO bounds any one-RTT
key-value design, and comparing verb pairs under cumulative
optimizations (reliable -> unreliable transport, signaled -> selective
signaling, DMA'd -> inlined payloads) is how Section 3 justifies HERD's
WRITE-request / UD-SEND-response hybrid.

Supported request/response pairs:

* ``WR/WR``     — client WRITEs request, server WRITEs response back
  into the client's memory (fastest, but needs 2 connected QPs worth of
  state per client at the server: does not scale, Section 3.3);
* ``WR/SEND``   — HERD's hybrid: WRITE request, UD SEND response;
* ``SEND/SEND`` — pure messaging, the HPC-style design (also the
  scalable fallback of Section 5.5).

The server can also perform N random memory accesses per request with
or without prefetching — that is Figure 7's experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Generator, List, Optional, Tuple

from repro.bench.result import RunResult, collect
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.sim import Event, LatencyRecorder, RateMeter, Simulator, Store
from repro.verbs import (
    CompletionQueue,
    QueuePair,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)

_RECV_SLOT = 40 + 4096


@dataclass(frozen=True)
class EchoConfig:
    """One ECHO variant."""

    request: str = "WRITE"        # "WRITE" | "SEND"
    response: str = "SEND"        # "WRITE" | "SEND"
    #: False = RC everywhere (the "basic" bars); True = UC for
    #: connected legs, UD for SEND legs marked ``send_over_ud``
    unreliable: bool = True
    #: selective signaling on requests and responses
    unsignaled: bool = True
    #: inline payloads in the WQE (payload must be <= 256)
    inline: bool = True
    #: SEND legs ride UD instead of the connected QP (HERD's responses)
    send_over_ud: bool = False
    payload_bytes: int = 32
    window: int = 4
    n_server_processes: int = 6
    #: Figure 7: random memory accesses per request at the server
    memory_accesses: int = 0
    prefetch: bool = True

    def __post_init__(self) -> None:
        if self.request not in ("WRITE", "SEND"):
            raise ValueError("request must be WRITE or SEND")
        if self.response not in ("WRITE", "SEND"):
            raise ValueError("response must be WRITE or SEND")
        if self.send_over_ud and self.response != "SEND" and self.request != "SEND":
            raise ValueError("send_over_ud needs a SEND leg")
        if self.request == "SEND" and self.response == "WRITE":
            raise ValueError("SEND requests pair with SEND responses")

    # -- the paper's named variants ---------------------------------------

    @classmethod
    def wr_wr(cls, **kw) -> "EchoConfig":
        return cls(request="WRITE", response="WRITE", **kw)

    @classmethod
    def wr_send(cls, **kw) -> "EchoConfig":
        """HERD's hybrid: WRITE request, SEND-over-UD response."""
        return cls(request="WRITE", response="SEND", send_over_ud=True, **kw)

    @classmethod
    def send_send(cls, **kw) -> "EchoConfig":
        return cls(request="SEND", response="SEND", **kw)

    def at_optimization_level(self, level: str) -> "EchoConfig":
        """'basic' | '+unreliable' | '+unsignaled' | '+inlined'
        (cumulative, matching Figure 5's bar groups)."""
        if level == "basic":
            return replace(self, unreliable=False, unsignaled=False, inline=False)
        if level == "+unreliable":
            return replace(self, unreliable=True, unsignaled=False, inline=False)
        if level == "+unsignaled":
            return replace(self, unreliable=True, unsignaled=True, inline=False)
        if level == "+inlined":
            return replace(self, unreliable=True, unsignaled=True, inline=True)
        raise ValueError("unknown optimization level %r" % level)

    # -- transports --------------------------------------------------------

    @property
    def write_transport(self) -> Transport:
        return Transport.UC if self.unreliable else Transport.RC

    @property
    def send_transport(self) -> Transport:
        if not self.unreliable:
            return Transport.RC
        return Transport.UD if self.send_over_ud else Transport.UC


class _EchoClient:
    """Closed-loop echo client with a window of outstanding echoes."""

    def __init__(self, cid: int, device: RdmaDevice, config: EchoConfig) -> None:
        self.cid = cid
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.conn_qp: Optional[QueuePair] = None     # connected to server proc
        self.ud_qp: Optional[QueuePair] = None       # for UD legs
        self.server_ah: Optional[Tuple[str, int]] = None
        self.request_raddr = 0                       # server slot base addr
        self.request_rkey = 0
        # response landing zone (WRITE responses) or recv buffers (SEND)
        self.resp_mr = device.register_memory(
            max(config.window * max(config.payload_bytes, 1), 64)
        )
        self.recv_mr = device.register_memory(2 * config.window * _RECV_SLOT)
        self._staging = device.register_memory(config.window * 4096)
        self.resp_arrivals = Store(self.sim)
        self.resp_mr.on_write = lambda off, ln: self.resp_arrivals.put(off)
        self._pending: Deque[float] = deque()
        self.completed_hook = None
        self.echoed_bytes_ok = 0
        self.echoed_bytes_bad = 0

    def start(self) -> None:
        self.sim.process(self.run(), name="echo-client-%d" % self.cid)

    def run(self) -> Generator[Event, None, None]:
        cfg = self.config
        for slot in range(cfg.window):
            yield from self._issue(slot)
        while True:
            slot, payload = yield from self._await_response()
            sent_at = self._pending.popleft()
            if payload == self._payload_for(slot):
                self.echoed_bytes_ok += 1
            else:
                self.echoed_bytes_bad += 1
            if self.completed_hook is not None:
                self.completed_hook(self.sim.now, self.sim.now - sent_at)
            yield from self._issue(slot)

    # -- issue ---------------------------------------------------------------

    def _payload_for(self, slot: int) -> bytes:
        body = b"%02d%06d" % (self.cid % 100, slot)
        reps = -(-self.config.payload_bytes // len(body))
        return (body * reps)[: self.config.payload_bytes]

    def _issue(self, slot: int) -> Generator[Event, None, None]:
        cfg = self.config
        payload = self._payload_for(slot)
        if cfg.response == "SEND":
            # pre-post the RECV for the response
            qp = self.ud_qp if cfg.send_transport is Transport.UD else self.conn_qp
            offset = (slot % cfg.window) * _RECV_SLOT
            yield from self.device.post_recv_timed(
                qp, RecvRequest(wr_id=slot, local=(self.recv_mr, offset, _RECV_SLOT))
            )
        if cfg.request == "WRITE":
            raddr = self.request_raddr + slot * 4096
            if cfg.inline:
                wr = WorkRequest.write(
                    raddr=raddr, rkey=self.request_rkey, payload=payload,
                    inline=True, signaled=not cfg.unsignaled,
                )
            else:
                self._staging.write(slot * 4096, payload)
                wr = WorkRequest.write(
                    raddr=raddr, rkey=self.request_rkey,
                    local=(self._staging, slot * 4096, len(payload)),
                    signaled=not cfg.unsignaled,
                )
            yield from self.device.post_send_timed(self.conn_qp, wr)
        else:  # SEND request
            ud = self.config.send_transport is Transport.UD
            qp = self.ud_qp if ud else self.conn_qp
            ah = self.server_ah if ud else None
            if cfg.inline:
                wr = WorkRequest.send(
                    payload=payload, inline=True, signaled=not cfg.unsignaled, ah=ah
                )
            else:
                self._staging.write(slot * 4096, payload)
                wr = WorkRequest.send(
                    local=(self._staging, slot * 4096, len(payload)),
                    signaled=not cfg.unsignaled, ah=ah,
                )
            yield from self.device.post_send_timed(qp, wr)
        self._pending.append(self.sim.now)
        self._drain_send_completions()

    def _drain_send_completions(self) -> None:
        # Signaled runs generate send CQEs; drain them without blocking.
        for queue_pair in (self.conn_qp, self.ud_qp):
            if queue_pair is not None:
                while queue_pair.send_cq.try_pop() is not None:
                    pass

    # -- responses -------------------------------------------------------------

    def _await_response(self) -> Generator[Event, None, Tuple[int, bytes]]:
        cfg = self.config
        if cfg.response == "WRITE":
            offset = yield self.resp_arrivals.get()
            # polling one's own memory costs a few cache probes
            yield self.sim.timeout(4 * self.profile.poll_check_ns)
            slot = offset // max(cfg.payload_bytes, 1)
            return slot, self.resp_mr.read(offset, cfg.payload_bytes)
        qp = self.ud_qp if cfg.send_transport is Transport.UD else self.conn_qp
        cqe = yield qp.recv_cq.pop()
        yield self.sim.timeout(self.profile.cq_poll_ns)
        grh = 40 if cfg.send_transport is Transport.UD else 0
        offset = (cqe.wr_id % cfg.window) * _RECV_SLOT
        return cqe.wr_id, self.recv_mr.read(offset + grh, cqe.byte_len)


class _EchoServerProcess:
    """One server core bouncing requests back."""

    def __init__(
        self,
        index: int,
        device: RdmaDevice,
        config: EchoConfig,
    ) -> None:
        self.index = index
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.request_mr = None          # set by cluster for WRITE requests
        self.arrivals = Store(self.sim)
        self.recv_cq = CompletionQueue(self.sim, "es%d.rcq" % index)
        self.ud_qp: Optional[QueuePair] = device.create_qp(Transport.UD, recv_cq=self.recv_cq)
        #: per-client state: (QP or None, response ah/addr info)
        self.clients: List[dict] = []
        #: UD requests: map a sender's (machine, qpn) to its client state
        self.ah_index: Dict[Tuple[str, int], int] = {}
        self._staging = device.register_memory(1 << 16)
        self._staging_cursor = 0
        self._recvs_since_doorbell = 0
        self.echoes = 0

    def start(self) -> None:
        self.sim.process(self.run(), name="echo-server-%d" % self.index)

    def run(self) -> Generator[Event, None, None]:
        cfg = self.config
        p = self.profile
        while True:
            if cfg.request == "WRITE":
                client_slot = yield self.arrivals.get()
                yield self.sim.timeout(4 * p.poll_check_ns)
                local_index, slot, offset = client_slot
                payload = self.request_mr.read(offset, cfg.payload_bytes)
            else:
                cqe = yield self.recv_cq.pop()
                yield self.sim.timeout(p.cq_poll_ns)
                # The payload landed in the buffer of the *consumed* RECV
                # (identified by wr_id); over UD that RECV ring is shared
                # across clients, so the *requester* is identified by the
                # completion's source address instead.
                buf_index, slot = divmod(cqe.wr_id, 1 << 16)
                grh = 40 if cfg.send_transport is Transport.UD else 0
                buf_state = self.clients[buf_index]
                offset = buf_state["recv_base"] + (slot % cfg.window) * _RECV_SLOT
                payload = buf_state["recv_mr"].read(offset + grh, cqe.byte_len)
                if cfg.send_transport is Transport.UD:
                    local_index = self.ah_index[cqe.src]
                else:
                    local_index = buf_index
                # Repost the consumed RECV, ringing the doorbell once
                # per batch of 8 (standard batched-RECV optimization).
                self.device.post_recv(
                    buf_state["recv_qp"],
                    RecvRequest(
                        wr_id=cqe.wr_id,
                        local=(buf_state["recv_mr"], offset, _RECV_SLOT),
                    ),
                )
                yield self.sim.timeout(p.post_recv_ns)
                self._recvs_since_doorbell += 1
                if self._recvs_since_doorbell >= 8:
                    self._recvs_since_doorbell = 0
                    yield self.device.machine.pcie.doorbell()
            # Figure 7: N random memory accesses, maskable by prefetching.
            if cfg.memory_accesses:
                per = p.prefetch_hit_ns if cfg.prefetch else p.dram_ns
                yield self.sim.timeout(cfg.memory_accesses * per)
            yield from self._respond(local_index, slot, payload)
            self.echoes += 1
            self._drain_send_completions()

    def _respond(self, local_index: int, slot: int, payload: bytes):
        cfg = self.config
        state = self.clients[local_index]
        if cfg.response == "WRITE":
            raddr = state["resp_addr"] + slot * max(cfg.payload_bytes, 1)
            if cfg.inline:
                wr = WorkRequest.write(
                    raddr=raddr, rkey=state["resp_rkey"], payload=payload,
                    inline=True, signaled=not cfg.unsignaled,
                )
            else:
                offset = self._stage(payload)
                wr = WorkRequest.write(
                    raddr=raddr, rkey=state["resp_rkey"],
                    local=(self._staging, offset, len(payload)),
                    signaled=not cfg.unsignaled,
                )
            yield from self.device.post_send_timed(state["conn_qp"], wr)
        else:
            ud = cfg.send_transport is Transport.UD
            qp = self.ud_qp if ud else state["conn_qp"]
            ah = state["client_ah"] if ud else None
            if cfg.inline:
                wr = WorkRequest.send(
                    payload=payload, inline=True, signaled=not cfg.unsignaled, ah=ah
                )
            else:
                offset = self._stage(payload)
                wr = WorkRequest.send(
                    local=(self._staging, offset, len(payload)),
                    signaled=not cfg.unsignaled, ah=ah,
                )
            yield from self.device.post_send_timed(qp, wr)

    def _stage(self, payload: bytes) -> int:
        if self._staging_cursor + len(payload) > 1 << 16:
            self._staging_cursor = 0
        offset = self._staging_cursor
        self._staging.write(offset, payload)
        self._staging_cursor += len(payload)
        return offset

    def _drain_send_completions(self) -> None:
        for state in self.clients:
            qp = state.get("conn_qp")
            if qp is not None:
                while qp.send_cq.try_pop() is not None:
                    pass
        while self.ud_qp.send_cq.try_pop() is not None:
            pass


class EchoCluster:
    """A complete ECHO deployment on one simulated fabric."""

    def __init__(
        self,
        config: EchoConfig,
        profile: HardwareProfile = APT,
        n_clients: int = 48,
        n_client_machines: int = 16,
        seed: int = 0,
    ) -> None:
        self.config = config
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.servers = [
            _EchoServerProcess(s, self.server_device, config)
            for s in range(config.n_server_processes)
        ]
        self.clients: List[_EchoClient] = []
        request_region_bytes = max(n_clients * config.window * 4096, 4096)
        self.request_mr = self.server_device.register_memory(request_region_bytes)
        self.request_mr.on_write = self._request_landed
        self._wire(n_clients)

    def _wire(self, n_clients: int) -> None:
        cfg = self.config
        for cid in range(n_clients):
            device = self.client_devices[cid % len(self.client_devices)]
            client = _EchoClient(cid, device, cfg)
            sproc = self.servers[cid % len(self.servers)]
            local_index = len(sproc.clients)

            # connected QP pair (used by WRITE legs and connected SENDs)
            server_qp = self.server_device.create_qp(
                cfg.write_transport if cfg.request == "WRITE" else cfg.send_transport
                if cfg.send_transport is not Transport.UD
                else cfg.write_transport,
                recv_cq=sproc.recv_cq,
            )
            client_qp = device.create_qp(server_qp.transport)
            server_qp.connect(device.machine.name, client_qp.qpn)
            client_qp.connect("server", server_qp.qpn)
            client.conn_qp = client_qp
            client.ud_qp = device.create_qp(Transport.UD)
            client.server_ah = ("server", sproc.ud_qp.qpn)
            client.request_rkey = self.request_mr.rkey
            client.request_raddr = (
                self.request_mr.addr + cid * cfg.window * 4096
            )

            state = {
                "conn_qp": server_qp,
                "client_ah": (device.machine.name, client.ud_qp.qpn),
                "resp_addr": client.resp_mr.addr,
                "resp_rkey": client.resp_mr.rkey,
                "cid": cid,
            }
            if cfg.request == "SEND":
                # the server pre-posts RECVs for this client's requests
                recv_qp = (
                    sproc.ud_qp if cfg.send_transport is Transport.UD else server_qp
                )
                recv_mr = self.server_device.register_memory(
                    2 * cfg.window * _RECV_SLOT
                )
                state["recv_qp"] = recv_qp
                state["recv_mr"] = recv_mr
                state["recv_base"] = 0
                for slot in range(cfg.window):
                    self.server_device.post_recv(
                        recv_qp,
                        RecvRequest(
                            wr_id=(local_index << 16) | slot,
                            local=(recv_mr, (slot % cfg.window) * _RECV_SLOT, _RECV_SLOT),
                        ),
                    )
            sproc.clients.append(state)
            sproc.ah_index[(device.machine.name, client.ud_qp.qpn)] = local_index
            sproc.request_mr = self.request_mr
            self.clients.append(client)

    def _request_landed(self, offset: int, _length: int) -> None:
        cfg = self.config
        cid = offset // (cfg.window * 4096)
        slot = (offset % (cfg.window * 4096)) // 4096
        sproc = self.servers[cid % len(self.servers)]
        local_index = next(
            i for i, st in enumerate(sproc.clients) if st["cid"] == cid
        )
        sproc.arrivals.put((local_index, slot, offset))

    # ------------------------------------------------------------------

    def run(self, warmup_ns: float = 30_000.0, measure_ns: float = 150_000.0) -> RunResult:
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        for client in self.clients:
            def hook(now, latency, _m=meter, _l=latencies):
                _m.record(now)
                _l.record(now, latency)

            client.completed_hook = hook
            client.start()
        for server in self.servers:
            server.start()
        self.sim.run(until=window_end)
        bad = sum(c.echoed_bytes_bad for c in self.clients)
        return collect(meter, latencies, measure_ns, echo_mismatches=float(bad))
