"""FaRM-em and FaRM-em-VAR: the emulated FaRM-KV comparison (Section 5.1.2).

FaRM-KV's protocol, as emulated by the paper:

* **GET (inline mode, "FaRM-em")** — one READ of the whole hopscotch
  neighborhood: ``6 * (SK + SV)`` bytes.  The READ size grows with the
  value, which is what bends FaRM's curve in Figure 10.
* **GET (out-of-table mode, "FaRM-em-VAR")** — a ``6 * (SK + SP)`` byte
  neighborhood READ (SP = 8-byte pointer), then a second READ of the
  value: two RTTs.
* **PUT** — the client WRITEs the SK+SV item into a circular buffer at
  the server (over UC, with the paper's optimizations); the server
  polls the buffer and notifies completion with a WRITE back to the
  client, which polls its own memory.

As with Pilaf, the emulation omits the backing hash table: the server
answers instantly, and the GET targets are address arithmetic over a
dummy table region.  Each client process pipelines ``window``
operations over one RC QP (READs) plus one UC QP (the PUT path), so
the server holds 2 * NC connected QPs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.bench.result import RunResult, collect
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.kv.hashing import hash_key
from repro.sim import Event, LatencyRecorder, RateMeter, Simulator, Store
from repro.verbs import QueuePair, RdmaDevice, Transport, WorkRequest
from repro.workloads.ycsb import Workload, WorkloadStream

NEIGHBORHOOD = 6
POINTER_BYTES = 8


@dataclass(frozen=True)
class FarmConfig:
    key_bytes: int = 16
    value_bytes: int = 32
    #: True = values inline in the hash table (FaRM-em);
    #: False = out-of-table values behind pointers (FaRM-em-VAR)
    inline_values: bool = True
    #: operations each client process keeps in flight
    window: int = 4
    n_server_processes: int = 6

    @property
    def neighborhood_read_bytes(self) -> int:
        if self.inline_values:
            return NEIGHBORHOOD * (self.key_bytes + self.value_bytes)
        return NEIGHBORHOOD * (self.key_bytes + POINTER_BYTES)


class _FarmClientProcess:
    """A client process: window lanes pipelined over shared QPs."""

    def __init__(
        self,
        cid: int,
        device: RdmaDevice,
        config: FarmConfig,
        stream: WorkloadStream,
    ) -> None:
        self.cid = cid
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.stream = stream
        self.read_qp: Optional[QueuePair] = None   # RC: GETs
        self.put_qp: Optional[QueuePair] = None    # UC: PUT writes
        self.table_addr = 0
        self.table_rkey = 0
        self.table_bytes = 0
        self.put_raddr = 0       # base of this process's buffer slots
        self.put_rkey = 0
        self.put_slot_bytes = 0
        self.sink = device.register_memory(config.window * 8192)
        self._staging = device.register_memory(config.window * 2048)
        #: server PUT acknowledgements land here, one word per lane
        self.ack_mr = device.register_memory(64 * config.window)
        self.ack_mr.on_write = self._ack_landed
        self._read_done = [Store(self.sim) for _ in range(config.window)]
        self._ack_done = [Store(self.sim) for _ in range(config.window)]
        self.completed_hook = None
        self.gets = 0
        self.puts = 0

    def start(self) -> None:
        self.sim.process(self._dispatch_reads(), name="farm-c%d-scq" % self.cid)
        for lane in range(self.config.window):
            self.sim.process(self._lane(lane), name="farm-c%d-l%d" % (self.cid, lane))

    def _ack_landed(self, offset: int, _length: int) -> None:
        self._ack_done[offset // 64].put(offset)

    def _dispatch_reads(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.read_qp.send_cq.pop()
            self._read_done[cqe.wr_id].put(cqe)

    def _lane(self, lane: int) -> Generator[Event, None, None]:
        while True:
            op = self.stream.next_op()
            started = self.sim.now
            if op.is_get:
                yield from self._get(lane, op.key)
                self.gets += 1
            else:
                yield from self._put(lane, op.key, op.value)
                self.puts += 1
            if self.completed_hook is not None:
                self.completed_hook(self.sim.now, self.sim.now - started)

    def _get(self, lane: int, key: bytes) -> Generator[Event, None, None]:
        cfg = self.config
        span = cfg.neighborhood_read_bytes
        home = hash_key(key) % max(1, self.table_bytes - span)
        wr = WorkRequest.read(
            raddr=self.table_addr + home,
            rkey=self.table_rkey,
            local=(self.sink, lane * 8192, span),
            wr_id=lane,
        )
        yield from self.device.post_send_timed(self.read_qp, wr)
        yield self._read_done[lane].get()
        yield self.sim.timeout(self.profile.cq_poll_ns)
        if not cfg.inline_values:
            # VAR mode: follow the out-of-table pointer with a 2nd READ.
            offset = hash_key(key, 3) % max(1, self.table_bytes - cfg.value_bytes)
            wr = WorkRequest.read(
                raddr=self.table_addr + offset,
                rkey=self.table_rkey,
                local=(self.sink, lane * 8192 + span, cfg.value_bytes),
                wr_id=lane,
            )
            yield from self.device.post_send_timed(self.read_qp, wr)
            yield self._read_done[lane].get()
            yield self.sim.timeout(self.profile.cq_poll_ns)

    def _put(self, lane: int, key: bytes, value: bytes) -> Generator[Event, None, None]:
        payload = key + value
        raddr = self.put_raddr + lane * self.put_slot_bytes
        if len(payload) <= self.profile.max_inline:
            wr = WorkRequest.write(
                raddr=raddr, rkey=self.put_rkey,
                payload=payload, inline=True, signaled=False,
            )
        else:
            self._staging.write(lane * 2048, payload)
            wr = WorkRequest.write(
                raddr=raddr, rkey=self.put_rkey,
                local=(self._staging, lane * 2048, len(payload)), signaled=False,
            )
        yield from self.device.post_send_timed(self.put_qp, wr)
        # Wait for the server's completion WRITE to land in our memory.
        yield self._ack_done[lane].get()
        yield self.sim.timeout(4 * self.profile.poll_check_ns)


class _FarmServerProcess:
    """A server core polling its clients' PUT circular buffers."""

    def __init__(self, index: int, device: RdmaDevice) -> None:
        self.index = index
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.arrivals = Store(self.sim)
        #: per assigned client process: qp (UC back to client), ack info
        self.clients: List[dict] = []
        self.puts_handled = 0

    def start(self) -> None:
        self.sim.process(self.run(), name="farm-server-%d" % self.index)

    def run(self) -> Generator[Event, None, None]:
        p = self.profile
        while True:
            client_index, lane = yield self.arrivals.get()
            # Poll cost of spotting the new request in the buffer.
            yield self.sim.timeout(4 * p.poll_check_ns)
            state = self.clients[client_index]
            # Emulated: no hash-table update; notify with a tiny WRITE.
            wr = WorkRequest.write(
                raddr=state["ack_addr"] + lane * 64, rkey=state["ack_rkey"],
                payload=b"\x01", inline=True, signaled=False,
            )
            yield from self.device.post_send_timed(state["qp"], wr)
            self.puts_handled += 1


class FarmCluster:
    """An emulated FaRM-KV deployment (FaRM-em / FaRM-em-VAR)."""

    TABLE_BYTES = 1 << 21
    PUT_SLOT = 2048

    def __init__(
        self,
        config: Optional[FarmConfig] = None,
        workload: Optional[Workload] = None,
        profile: HardwareProfile = APT,
        n_clients: int = 51,
        n_client_machines: int = 17,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else FarmConfig()
        self.workload = workload if workload is not None else Workload(
            get_fraction=0.95, value_size=self.config.value_bytes
        )
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        self.table = self.server_device.register_memory(self.TABLE_BYTES)
        self.servers = [
            _FarmServerProcess(s, self.server_device)
            for s in range(self.config.n_server_processes)
        ]
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.clients: List[_FarmClientProcess] = []
        self._n_clients = n_clients
        lanes = n_clients * self.config.window
        self.put_buffers = self.server_device.register_memory(
            max(lanes, 1) * self.PUT_SLOT
        )
        self.put_buffers.on_write = self._put_landed
        self._wire(n_clients, seed)

    def _wire(self, n_clients: int, seed: int) -> None:
        cfg = self.config
        for cid in range(n_clients):
            device = self.client_devices[cid % len(self.client_devices)]
            stream = self.workload.stream(seed=seed * 104_729 + cid)
            client = _FarmClientProcess(cid, device, cfg, stream)
            sproc = self.servers[cid % len(self.servers)]
            # RC pair for READs.
            s_read = self.server_device.create_qp(Transport.RC)
            c_read = device.create_qp(Transport.RC)
            s_read.connect(device.machine.name, c_read.qpn)
            c_read.connect("server", s_read.qpn)
            client.read_qp = c_read
            # UC pair for the PUT path (both directions).
            s_put = self.server_device.create_qp(Transport.UC)
            c_put = device.create_qp(Transport.UC)
            s_put.connect(device.machine.name, c_put.qpn)
            c_put.connect("server", s_put.qpn)
            client.put_qp = c_put
            client.table_addr = self.table.addr
            client.table_rkey = self.table.rkey
            client.table_bytes = self.TABLE_BYTES
            client.put_raddr = self.put_buffers.addr + cid * cfg.window * self.PUT_SLOT
            client.put_rkey = self.put_buffers.rkey
            client.put_slot_bytes = self.PUT_SLOT
            sproc.clients.append(
                {
                    "qp": s_put,
                    "ack_addr": client.ack_mr.addr,
                    "ack_rkey": client.ack_mr.rkey,
                    "cid": cid,
                }
            )
            self.clients.append(client)

    def _put_landed(self, offset: int, _length: int) -> None:
        lane_global, cfg = offset // self.PUT_SLOT, self.config
        cid, lane = divmod(lane_global, cfg.window)
        sproc = self.servers[cid % len(self.servers)]
        client_index = next(
            i for i, st in enumerate(sproc.clients) if st["cid"] == cid
        )
        sproc.arrivals.put((client_index, lane))

    # ------------------------------------------------------------------

    def run(self, warmup_ns: float = 30_000.0, measure_ns: float = 150_000.0) -> RunResult:
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        for client in self.clients:
            def hook(now, latency, _m=meter, _l=latencies):
                _m.record(now)
                _l.record(now, latency)

            client.completed_hook = hook
            client.start()
        for server in self.servers:
            server.start()
        self.sim.run(until=window_end)
        return collect(
            meter,
            latencies,
            measure_ns,
            puts_handled=float(sum(s.puts_handled for s in self.servers)),
            read_bytes_per_get=float(self.config.neighborhood_read_bytes),
        )
