"""Full (non-emulated) Pilaf and FaRM-KV: real tables behind real READs.

The paper compares HERD against *emulated* Pilaf/FaRM whose servers
answer instantly (Section 5.1).  These classes go one step further than
the paper could: the cuckoo / hopscotch tables live **inside registered
memory regions**, GET clients traverse the actual bytes with RDMA READs
and decode them client-side (verifying Pilaf's self-verifying-bucket
checksums on every probe), and PUTs run the real insertion code —
relocations, displacements and all — on the server's CPU.

The probe counts and READ sizes are therefore *emergent*, not assumed:
a Pilaf GET probes however many buckets the actual cuckoo placement
requires; a FaRM GET parses the slot its key really landed in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.bench.result import RunResult, collect
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.kv.cuckoo import BUCKET_BYTES, CuckooFullError, CuckooTable
from repro.kv.hopscotch import HopscotchTable
from repro.sim import Event, LatencyRecorder, RateMeter, Simulator, Store
from repro.verbs import (
    CompletionQueue,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)
from repro.workloads.ycsb import Workload, keyhash, value_for

_RECV_SLOT = 40 + 2048
#: CPU cost of decoding + checksumming one fetched bucket client-side
_PARSE_NS = 20.0


# ---------------------------------------------------------------------------
# Pilaf, for real
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PilafFullConfig:
    value_bytes: int = 32
    n_buckets: int = 2 ** 14
    extent_bytes: int = 1 << 22
    window: int = 4
    n_server_processes: int = 6


class _PilafFullClient:
    """One client process traversing the real cuckoo table with READs."""

    def __init__(self, cid, device, config, stream, schema: CuckooTable) -> None:
        self.cid = cid
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.stream = stream
        #: geometry-only view of the server's table (hash functions and
        #: layout constants; never its data)
        self.schema = schema
        self.qp = None
        self.table_addr = 0
        self.table_rkey = 0
        self.extents_addr = 0
        self.extents_rkey = 0
        self.sink = device.register_memory(config.window * 4096)
        self.recv_mr = device.register_memory(2 * config.window * _RECV_SLOT)
        self._read_done = [Store(self.sim) for _ in range(config.window)]
        self._resp_done = [Store(self.sim) for _ in range(config.window)]
        self.completed_hook = None
        self.gets = 0
        self.get_hits = 0
        self.get_misses = 0
        self.wrong_values = 0
        self.puts = 0
        self.probes_issued = 0
        self.torn_reads = 0

    def start(self) -> None:
        self.sim.process(self._dispatch_sends(), name="pilaff-c%d-scq" % self.cid)
        self.sim.process(self._dispatch_recvs(), name="pilaff-c%d-rcq" % self.cid)
        for lane in range(self.config.window):
            self.sim.process(self._lane(lane), name="pilaff-c%d-l%d" % (self.cid, lane))

    def _dispatch_sends(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.qp.send_cq.pop()
            self._read_done[cqe.wr_id].put(cqe)

    def _dispatch_recvs(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.qp.recv_cq.pop()
            self._resp_done[cqe.wr_id % self.config.window].put(cqe)

    def _lane(self, lane: int) -> Generator[Event, None, None]:
        while True:
            op = self.stream.next_op()
            started = self.sim.now
            if op.is_get:
                yield from self._get(lane, op)
            else:
                yield from self._put(lane, op.key, op.value)
                self.puts += 1
            if self.completed_hook is not None:
                self.completed_hook(self.sim.now, self.sim.now - started)

    def _read(self, lane: int, raddr: int, rkey: int, length: int, sink_off: int):
        wr = WorkRequest.read(
            raddr=raddr, rkey=rkey, local=(self.sink, sink_off, length), wr_id=lane
        )
        yield from self.device.post_send_timed(self.qp, wr)
        yield self._read_done[lane].get()
        yield self.sim.timeout(self.profile.cq_poll_ns)

    def _get(self, lane: int, op) -> Generator[Event, None, None]:
        key = op.key.ljust(16, b"\x00")
        self.gets += 1
        sink_off = lane * 4096
        for bucket in self.schema.buckets_for(key):
            offset, length = self.schema.bucket_span(bucket)
            parsed = None
            for _attempt in range(3):
                yield from self._read(
                    lane, self.table_addr + offset, self.table_rkey, length, sink_off
                )
                self.probes_issued += 1
                yield self.sim.timeout(_PARSE_NS)
                try:
                    parsed = CuckooTable.parse_bucket(self.sink.read(sink_off, length))
                    break
                except ValueError:
                    # Torn read under a concurrent PUT: the bucket's
                    # checksum failed; re-READ the same bucket.
                    self.torn_reads += 1
            if parsed is None or parsed[0] != key:
                continue
            _key, ptr, vlen = parsed
            span = CuckooTable.EXTENT_HEADER_BYTES + vlen
            yield from self._read(
                lane, self.extents_addr + ptr, self.extents_rkey, span, sink_off + 64
            )
            yield self.sim.timeout(_PARSE_NS)
            value = CuckooTable.parse_extent(self.sink.read(sink_off + 64, span))
            self.get_hits += 1
            if value != value_for(op.item, self.config.value_bytes):
                self.wrong_values += 1
            return
        self.get_misses += 1

    def _put(self, lane: int, key: bytes, value: bytes) -> Generator[Event, None, None]:
        offset = lane * _RECV_SLOT
        yield from self.device.post_recv_timed(
            self.qp, RecvRequest(wr_id=lane, local=(self.recv_mr, offset, _RECV_SLOT))
        )
        payload = key + value
        wr = WorkRequest.send(payload=payload, inline=len(payload) <= 256, signaled=False)
        yield from self.device.post_send_timed(self.qp, wr)
        yield self._resp_done[lane].get()
        yield self.sim.timeout(self.profile.cq_poll_ns)


class _PilafFullServerProcess:
    """A server core executing real cuckoo inserts for PUTs."""

    def __init__(self, index, device, table: CuckooTable) -> None:
        self.index = index
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.table = table
        self.recv_cq = CompletionQueue(self.sim, "pfs%d.rcq" % index)
        self.clients: List[dict] = []
        self.puts_handled = 0
        self.failed_inserts = 0

    def start(self) -> None:
        self.sim.process(self.run(), name="pilaff-server-%d" % self.index)

    def run(self) -> Generator[Event, None, None]:
        p = self.profile
        while True:
            cqe = yield self.recv_cq.pop()
            yield self.sim.timeout(p.cq_poll_ns)
            client_index, slot = divmod(cqe.wr_id, 1 << 16)
            state = self.clients[client_index]
            data = state["recv_mr"].read(slot * _RECV_SLOT, cqe.byte_len)
            key, value = data[:16], data[16:]
            try:
                self.table.put(key, value)
                status = b"\x01"
            except CuckooFullError:
                self.failed_inserts += 1
                status = b"\x00"
            # Real insertion work: each touched bucket is a random access.
            yield self.sim.timeout(self.table.last_op_accesses * p.dram_ns)
            yield from self.device.post_recv_timed(
                state["recv_qp"],
                RecvRequest(
                    wr_id=cqe.wr_id,
                    local=(state["recv_mr"], slot * _RECV_SLOT, _RECV_SLOT),
                ),
            )
            wr = WorkRequest.send(payload=status, inline=True, signaled=False)
            yield from self.device.post_send_timed(state["recv_qp"], wr)
            self.puts_handled += 1


class PilafFullCluster:
    """Pilaf with its real cuckoo table resident in server memory."""

    def __init__(
        self,
        config: Optional[PilafFullConfig] = None,
        workload: Optional[Workload] = None,
        profile: HardwareProfile = APT,
        n_clients: int = 51,
        n_client_machines: int = 17,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else PilafFullConfig()
        self.workload = workload if workload is not None else Workload(
            get_fraction=0.95, value_size=self.config.value_bytes
        )
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        n_buckets = 1 << (self.config.n_buckets - 1).bit_length()
        self.table_mr = self.server_device.register_memory(n_buckets * BUCKET_BYTES)
        self.extents_mr = self.server_device.register_memory(self.config.extent_bytes)
        #: the real table, living inside the registered regions
        self.table = CuckooTable(
            n_buckets=self.config.n_buckets,
            table_buffer=self.table_mr.buf,
            extent_buffer=self.extents_mr.buf,
            seed=seed,
        )
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.servers = [
            _PilafFullServerProcess(s, self.server_device, self.table)
            for s in range(self.config.n_server_processes)
        ]
        self.clients: List[_PilafFullClient] = []
        self._wire(n_clients, seed)

    def _wire(self, n_clients: int, seed: int) -> None:
        cfg = self.config
        for cid in range(n_clients):
            device = self.client_devices[cid % len(self.client_devices)]
            stream = self.workload.stream(seed=seed * 6_700_417 + cid)
            client = _PilafFullClient(cid, device, cfg, stream, self.table)
            sproc = self.servers[cid % len(self.servers)]
            server_qp = self.server_device.create_qp(Transport.RC, recv_cq=sproc.recv_cq)
            client_qp = device.create_qp(Transport.RC)
            server_qp.connect(device.machine.name, client_qp.qpn)
            client_qp.connect("server", server_qp.qpn)
            client.qp = client_qp
            client.table_addr = self.table_mr.addr
            client.table_rkey = self.table_mr.rkey
            client.extents_addr = self.extents_mr.addr
            client.extents_rkey = self.extents_mr.rkey
            recv_mr = self.server_device.register_memory(2 * cfg.window * _RECV_SLOT)
            client_index = len(sproc.clients)
            sproc.clients.append({"recv_qp": server_qp, "recv_mr": recv_mr})
            for slot in range(2 * cfg.window):
                self.server_device.post_recv(
                    server_qp,
                    RecvRequest(
                        wr_id=(client_index << 16) | slot,
                        local=(recv_mr, slot * _RECV_SLOT, _RECV_SLOT),
                    ),
                )
            self.clients.append(client)

    def preload(self, items: range) -> None:
        for item in items:
            self.table.put(keyhash(item), value_for(item, self.config.value_bytes))

    def run(self, warmup_ns: float = 30_000.0, measure_ns: float = 150_000.0) -> RunResult:
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        for client in self.clients:
            def hook(now, latency, _m=meter, _l=latencies):
                _m.record(now)
                _l.record(now, latency)

            client.completed_hook = hook
            client.start()
        for server in self.servers:
            server.start()
        self.sim.run(until=window_end)
        gets = sum(c.gets for c in self.clients)
        probes = sum(c.probes_issued for c in self.clients)
        return collect(
            meter,
            latencies,
            measure_ns,
            avg_probes=(probes / gets) if gets else 0.0,
            get_misses=float(sum(c.get_misses for c in self.clients)),
            wrong_values=float(sum(c.wrong_values for c in self.clients)),
            torn_reads=float(sum(c.torn_reads for c in self.clients)),
            failed_inserts=float(sum(s.failed_inserts for s in self.servers)),
        )


# ---------------------------------------------------------------------------
# FaRM-KV, for real
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FarmFullConfig:
    value_bytes: int = 32
    #: hopscotch cannot always keep its neighborhood invariant past
    #: ~50% occupancy without a resize (which FaRM performs and we do
    #: not), so deployments should size the table generously
    n_slots: int = 2 ** 15
    #: True = values inline in the slots (FaRM-em's default mode);
    #: False = out-of-table values, fetched with a second READ (VAR)
    inline_values: bool = True
    extent_bytes: int = 1 << 22
    window: int = 4
    n_server_processes: int = 6


class _FarmFullClient:
    """One client process READing real hopscotch neighborhoods."""

    def __init__(self, cid, device, config, stream, schema: HopscotchTable) -> None:
        self.cid = cid
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.stream = stream
        self.schema = schema
        self.read_qp = None
        self.put_qp = None
        self.table_addr = 0
        self.table_rkey = 0
        self.extents_addr = 0
        self.extents_rkey = 0
        self.put_raddr = 0
        self.put_rkey = 0
        self.put_slot_bytes = 0
        self.sink = device.register_memory(config.window * 8192)
        self.ack_mr = device.register_memory(64 * config.window)
        self.ack_mr.on_write = lambda off, ln: self._ack_done[off // 64].put(off)
        self._read_done = [Store(self.sim) for _ in range(config.window)]
        self._ack_done = [Store(self.sim) for _ in range(config.window)]
        self.completed_hook = None
        self.gets = 0
        self.get_hits = 0
        self.get_misses = 0
        self.wrong_values = 0
        self.puts = 0

    def start(self) -> None:
        self.sim.process(self._dispatch_reads(), name="farmf-c%d-scq" % self.cid)
        for lane in range(self.config.window):
            self.sim.process(self._lane(lane), name="farmf-c%d-l%d" % (self.cid, lane))

    def _dispatch_reads(self) -> Generator[Event, None, None]:
        while True:
            cqe = yield self.read_qp.send_cq.pop()
            self._read_done[cqe.wr_id].put(cqe)

    def _lane(self, lane: int) -> Generator[Event, None, None]:
        while True:
            op = self.stream.next_op()
            started = self.sim.now
            if op.is_get:
                yield from self._get(lane, op)
            else:
                yield from self._put(lane, op.key, op.value)
                self.puts += 1
            if self.completed_hook is not None:
                self.completed_hook(self.sim.now, self.sim.now - started)

    def _read(self, lane: int, raddr: int, length: int, sink_off: int, rkey=None):
        wr = WorkRequest.read(
            raddr=raddr, rkey=self.table_rkey if rkey is None else rkey,
            local=(self.sink, sink_off, length), wr_id=lane,
        )
        yield from self.device.post_send_timed(self.read_qp, wr)
        yield self._read_done[lane].get()
        yield self.sim.timeout(self.profile.cq_poll_ns)

    def _get(self, lane: int, op) -> Generator[Event, None, None]:
        key = op.key.ljust(16, b"\x00")
        self.gets += 1
        schema = self.schema
        home = schema.home_of(key)
        slot_bytes = schema.slot_bytes
        sink_off = lane * 8192
        first = min(schema.NEIGHBORHOOD, schema.n_slots - home)
        yield from self._read(
            lane, self.table_addr + home * slot_bytes, first * slot_bytes, sink_off
        )
        data = self.sink.read(sink_off, first * slot_bytes)
        if first < schema.NEIGHBORHOOD:
            # The neighborhood wraps the end of the table: second READ.
            rest = schema.NEIGHBORHOOD - first
            yield from self._read(
                lane, self.table_addr, rest * slot_bytes, sink_off + first * slot_bytes
            )
            data += self.sink.read(sink_off + first * slot_bytes, rest * slot_bytes)
        yield self.sim.timeout(_PARSE_NS)
        parsed = schema.parse_neighborhood(key, data)
        if parsed is None:
            self.get_misses += 1
            return
        value, ptr = parsed
        if not self.config.inline_values:
            # VAR mode: follow the real out-of-table pointer.
            vlen = self.config.value_bytes
            yield from self._read(
                lane, self.extents_addr + ptr, vlen,
                sink_off + schema.NEIGHBORHOOD * slot_bytes,
                rkey=self.extents_rkey,
            )
            value = self.sink.read(
                sink_off + schema.NEIGHBORHOOD * slot_bytes, vlen
            )
        self.get_hits += 1
        if value != value_for(op.item, self.config.value_bytes):
            self.wrong_values += 1

    def _put(self, lane: int, key: bytes, value: bytes) -> Generator[Event, None, None]:
        payload = key + value
        raddr = self.put_raddr + lane * self.put_slot_bytes
        wr = WorkRequest.write(
            raddr=raddr, rkey=self.put_rkey,
            payload=payload, inline=len(payload) <= 256, signaled=False,
            local=None if len(payload) <= 256 else (self.sink, 0, len(payload)),
        )
        yield from self.device.post_send_timed(self.put_qp, wr)
        yield self._ack_done[lane].get()
        yield self.sim.timeout(4 * self.profile.poll_check_ns)


class _FarmFullServerProcess:
    """A server core running real hopscotch inserts for PUTs."""

    def __init__(self, index, device, table: HopscotchTable) -> None:
        self.index = index
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.table = table
        self.arrivals = Store(self.sim)
        self.clients: List[dict] = []
        self.puts_handled = 0
        self.failed_inserts = 0

    def start(self) -> None:
        self.sim.process(self.run(), name="farmf-server-%d" % self.index)

    def run(self) -> Generator[Event, None, None]:
        from repro.kv.hopscotch import HopscotchFullError

        p = self.profile
        while True:
            client_index, lane, data = yield self.arrivals.get()
            yield self.sim.timeout(4 * p.poll_check_ns)
            key, value = data[:16], data[16:]
            displacements_before = self.table.displacements
            try:
                self.table.put(key, value)
                status = b"\x01"
            except HopscotchFullError:
                self.failed_inserts += 1
                status = b"\x00"
            # Neighborhood scan + any displacements: random accesses.
            accesses = 1 + (self.table.displacements - displacements_before)
            yield self.sim.timeout(accesses * p.dram_ns)
            state = self.clients[client_index]
            wr = WorkRequest.write(
                raddr=state["ack_addr"] + lane * 64, rkey=state["ack_rkey"],
                payload=status, inline=True, signaled=False,
            )
            yield from self.device.post_send_timed(state["qp"], wr)
            self.puts_handled += 1


class FarmFullCluster:
    """FaRM-KV with its real hopscotch table resident in server memory."""

    PUT_SLOT = 2048

    def __init__(
        self,
        config: Optional[FarmFullConfig] = None,
        workload: Optional[Workload] = None,
        profile: HardwareProfile = APT,
        n_clients: int = 51,
        n_client_machines: int = 17,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else FarmFullConfig()
        self.workload = workload if workload is not None else Workload(
            get_fraction=0.95, value_size=self.config.value_bytes
        )
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        n_slots = 1 << (self.config.n_slots - 1).bit_length()
        inline = self.config.inline_values
        slot_bytes = (20 + self.config.value_bytes) if inline else 24
        self.table_mr = self.server_device.register_memory(n_slots * slot_bytes)
        self.extents_mr = None
        extent_buffer = None
        if not inline:
            self.extents_mr = self.server_device.register_memory(
                self.config.extent_bytes
            )
            extent_buffer = self.extents_mr.buf
        self.table = HopscotchTable(
            n_slots=self.config.n_slots,
            value_capacity=self.config.value_bytes,
            inline=inline,
            table_buffer=self.table_mr.buf,
            extent_buffer=extent_buffer,
        )
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.servers = [
            _FarmFullServerProcess(s, self.server_device, self.table)
            for s in range(self.config.n_server_processes)
        ]
        self.clients: List[_FarmFullClient] = []
        lanes = n_clients * self.config.window
        self.put_buffers = self.server_device.register_memory(lanes * self.PUT_SLOT)
        self.put_buffers.on_write = self._put_landed
        self._wire(n_clients, seed)

    def _wire(self, n_clients: int, seed: int) -> None:
        cfg = self.config
        for cid in range(n_clients):
            device = self.client_devices[cid % len(self.client_devices)]
            stream = self.workload.stream(seed=seed * 15_485_863 + cid)
            client = _FarmFullClient(cid, device, cfg, stream, self.table)
            sproc = self.servers[cid % len(self.servers)]
            s_read = self.server_device.create_qp(Transport.RC)
            c_read = device.create_qp(Transport.RC)
            s_read.connect(device.machine.name, c_read.qpn)
            c_read.connect("server", s_read.qpn)
            client.read_qp = c_read
            s_put = self.server_device.create_qp(Transport.UC)
            c_put = device.create_qp(Transport.UC)
            s_put.connect(device.machine.name, c_put.qpn)
            c_put.connect("server", s_put.qpn)
            client.put_qp = c_put
            client.table_addr = self.table_mr.addr
            client.table_rkey = self.table_mr.rkey
            if self.extents_mr is not None:
                client.extents_addr = self.extents_mr.addr
                client.extents_rkey = self.extents_mr.rkey
            client.put_raddr = self.put_buffers.addr + cid * cfg.window * self.PUT_SLOT
            client.put_rkey = self.put_buffers.rkey
            client.put_slot_bytes = self.PUT_SLOT
            sproc.clients.append(
                {"qp": s_put, "ack_addr": client.ack_mr.addr, "ack_rkey": client.ack_mr.rkey, "cid": cid}
            )
            self.clients.append(client)

    def _put_landed(self, offset: int, length: int) -> None:
        lane_global = offset // self.PUT_SLOT
        cid, lane = divmod(lane_global, self.config.window)
        sproc = self.servers[cid % len(self.servers)]
        client_index = next(
            i for i, st in enumerate(sproc.clients) if st["cid"] == cid
        )
        data = self.put_buffers.read(offset, length)
        sproc.arrivals.put((client_index, lane, data))

    def preload(self, items: range) -> None:
        for item in items:
            self.table.put(keyhash(item), value_for(item, self.config.value_bytes))

    def run(self, warmup_ns: float = 30_000.0, measure_ns: float = 150_000.0) -> RunResult:
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        for client in self.clients:
            def hook(now, latency, _m=meter, _l=latencies):
                _m.record(now)
                _l.record(now, latency)

            client.completed_hook = hook
            client.start()
        for server in self.servers:
            server.start()
        self.sim.run(until=window_end)
        return collect(
            meter,
            latencies,
            measure_ns,
            get_misses=float(sum(c.get_misses for c in self.clients)),
            wrong_values=float(sum(c.wrong_values for c in self.clients)),
            failed_inserts=float(sum(s.failed_inserts for s in self.servers)),
        )
