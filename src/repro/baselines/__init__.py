"""Baseline systems the paper compares HERD against.

* :mod:`repro.baselines.echo` — ECHO servers over every verb pair and
  optimization level (Figures 2, 5, 7): the upper bound for one-RTT
  request-reply systems.
* :mod:`repro.baselines.pilaf` — Pilaf-em-OPT (Section 5.1.1): READ-based
  cuckoo GETs, SEND/RECV PUTs, with all of the paper's optimizations.
* :mod:`repro.baselines.farm` — FaRM-em and FaRM-em-VAR (Section 5.1.2):
  single-READ hopscotch GETs (inline values) or two-READ GETs (VAR),
  WRITE-based PUTs over UC.

Like the paper's own comparison, the Pilaf and FaRM emulations omit the
backing data structures and answer instantly — this gives the baselines
the maximum possible advantage (Section 5.1).
"""

from repro.baselines.echo import EchoCluster, EchoConfig
from repro.baselines.farm import FarmCluster, FarmConfig
from repro.baselines.pilaf import PilafCluster, PilafConfig

__all__ = [
    "EchoCluster",
    "EchoConfig",
    "FarmCluster",
    "FarmConfig",
    "PilafCluster",
    "PilafConfig",
]
