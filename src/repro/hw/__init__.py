"""Hardware models: PCIe, RNIC engines, QP-context cache, fabric, DRAM.

These models give *time* to the protocol logic in :mod:`repro.verbs`.
Every serialised hardware unit is a :class:`repro.sim.FifoServer` whose
deterministic service times are taken from a :class:`HardwareProfile`.
Two profiles ship with the library, matching Table 2 of the paper:

* :data:`APT` — Intel Xeon E5-2450 + ConnectX-3 MX354A, 56 Gbps
  InfiniBand via PCIe 3.0 x8 (the Emulab Apt cluster).
* :data:`SUSITNA` — AMD Opteron 6272 + ConnectX-3, 40 Gbps via PCIe 2.0
  x8 (the NSF PRObE Susitna cluster; the RoCE configuration).

The service-time constants are calibrated against the measurements the
paper itself reports (Figures 2-6 and Section 3.2); see DESIGN.md §4.
"""

from repro.hw.link import Fabric
from repro.hw.machine import Machine
from repro.hw.memory import MemorySystem
from repro.hw.params import APT, SUSITNA, HardwareProfile
from repro.hw.pcie import PcieBus
from repro.hw.qpcache import QpContextCache

__all__ = [
    "APT",
    "SUSITNA",
    "Fabric",
    "HardwareProfile",
    "Machine",
    "MemorySystem",
    "PcieBus",
    "QpContextCache",
]
