"""Host memory timing: DRAM accesses and software prefetching.

Section 4.1.1: a random DRAM access costs 60-120 ns; HERD masks this by
issuing a prefetch for a request's next address while ``post_send()``
(150 ns) runs for a *different* request, so by the time the pipeline
returns to a request its data is cache-resident.  This module provides
the cost model; the pipeline logic itself lives in
:mod:`repro.herd.pipeline`.
"""

from __future__ import annotations

from typing import Hashable, Set

from repro.hw.params import HardwareProfile


class MemorySystem:
    """Tracks outstanding prefetches and prices memory accesses."""

    def __init__(self, profile: HardwareProfile) -> None:
        self.profile = profile
        self._prefetched: Set[Hashable] = set()
        self.accesses = 0
        self.prefetch_hits = 0

    def prefetch(self, address: Hashable) -> float:
        """Issue a software prefetch for ``address``.

        Issuing costs (almost) nothing on the core — the latency is
        hidden behind later work; we charge a nominal 1 ns issue cost.
        """
        self._prefetched.add(address)
        return 1.0

    def access(self, address: Hashable) -> float:
        """Cost in ns of touching ``address`` now.

        A previously prefetched address costs
        :attr:`HardwareProfile.prefetch_hit_ns`; a cold one costs a full
        :attr:`HardwareProfile.dram_ns`.  The prefetch entry is consumed
        (caches are finite; we model single-use coverage).
        """
        self.accesses += 1
        if address in self._prefetched:
            self._prefetched.discard(address)
            self.prefetch_hits += 1
            return self.profile.prefetch_hit_ns
        return self.profile.dram_ns

    def random_access_ns(self, prefetched: bool) -> float:
        """Price an anonymous access (for models without real addresses)."""
        self.accesses += 1
        if prefetched:
            self.prefetch_hits += 1
            return self.profile.prefetch_hit_ns
        return self.profile.dram_ns
