"""The switched fabric connecting machines.

InfiniBand/RoCE links are lossless (credit-based / priority flow
control, Section 2.2.3), so the fabric never drops packets on its own.
Each machine has one full-duplex port: a transmit-side
:class:`~repro.sim.FifoServer` models serialisation onto the wire, and a
fixed propagation + switch delay follows.

Failure injection happens here.  The general mechanism is a *fault
hook* — ``fn(src, dst, packet, wire_bytes) -> Optional[LinkVerdict]`` —
installed by :mod:`repro.faults`; it can drop a packet before the wire,
corrupt it (the receiving NIC's ICRC check discards it after it has
burned wire and ingress capacity), duplicate it, or add extra delivery
delay (reordering).  The legacy knobs ``bit_error_rate`` and
``loss_filter`` are kept as thin wrappers over the same decision point:
they are consulted only when no fault hook is installed, and express
the paper's only loss source (bit errors; affected messages are simply
dropped and it is the application's job to retry).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.sim import FifoServer, Simulator
from repro.hw.params import HardwareProfile

#: A delivery callback: receives the packet object.
DeliverFn = Callable[[Any], None]


@dataclass
class LinkVerdict:
    """What the fault layer decided about one packet transmission.

    ``drop`` loses the packet before serialisation (egress bit error /
    link down).  ``corrupt`` delivers the packet with its ``corrupt``
    flag set — the receiving NIC discards it after the ICRC check, so
    the packet still consumes wire and ingress-engine capacity.
    ``duplicate`` delivers that many extra copies, each ``dup_delay_ns``
    apart.  ``extra_delay_ns`` is added to the propagation delay, which
    reorders the packet relative to later traffic.  ``tx_mult`` scales
    the serialisation time (a degraded, slow-but-alive link); 1.0 is
    neutral.
    """

    drop: bool = False
    corrupt: bool = False
    duplicate: int = 0
    extra_delay_ns: float = 0.0
    dup_delay_ns: float = 0.0
    tx_mult: float = 1.0


#: A fault hook: judges one transmission, None means "no opinion".
FaultHook = Callable[[str, str, Any, int], Optional[LinkVerdict]]


class Port:
    """One machine's full-duplex fabric port."""

    def __init__(self, sim: Simulator, profile: HardwareProfile, name: str) -> None:
        self.sim = sim
        self.profile = profile
        self.tx = FifoServer(sim, name + ".tx")
        self.deliver: DeliverFn = _unattached
        self.tx_packets = 0
        self.tx_bytes = 0


def _unattached(packet: Any) -> None:
    raise RuntimeError("port has no delivery handler attached")


class Fabric:
    """A non-blocking crossbar switch between named machines.

    The models in this repo run client counts into the hundreds; a real
    cluster has per-link contention, but the paper's bottlenecks are all
    at the *server's* NIC and PCIe bus, so a crossbar with per-port
    serialisation captures the relevant contention (the server's own
    port is shared by all of its traffic).
    """

    def __init__(self, sim: Simulator, profile: HardwareProfile, loss_seed: int = 1) -> None:
        self.sim = sim
        self.profile = profile
        self.ports: Dict[str, Port] = {}
        #: probability that any one packet is corrupted on the wire
        #: (legacy knob: a thin wrapper over the fault layer's drop
        #: verdict, used when no fault hook is installed)
        self.bit_error_rate = 0.0
        #: optional fn(src, dst) -> loss rate, overriding the flat rate
        #: (lets failure-injection tests target one direction)
        self.loss_filter: Optional[Callable[[str, str], float]] = None
        #: the systematic fault layer (repro.faults installs this);
        #: takes precedence over the legacy knobs above
        self.fault_hook: Optional[FaultHook] = None
        self._rng = random.Random(loss_seed)
        self.dropped = 0
        self.corrupted = 0
        self.duplicated = 0

    @property
    def lossy(self) -> bool:
        """Whether any loss source is configured.

        Reliable transports arm their retransmission timers off this —
        in a lossless run the timers would only slow the simulator.
        """
        return (
            self.bit_error_rate > 0
            or self.loss_filter is not None
            or self.fault_hook is not None
        )

    def attach(self, name: str, deliver: DeliverFn) -> Port:
        """Register machine ``name`` and its packet-delivery handler."""
        if name in self.ports:
            raise ValueError("machine %r already attached" % name)
        port = Port(self.sim, self.profile, name)
        port.deliver = deliver
        self.ports[name] = port
        return port

    def _judge(self, src: str, dst: str, packet: Any, wire_bytes: int) -> Optional[LinkVerdict]:
        """One decision point for every loss source.

        The fault hook wins when installed; otherwise the legacy knobs
        (a flat bit-error rate, or a per-direction loss filter) roll
        against the fabric's private RNG.
        """
        if self.fault_hook is not None:
            return self.fault_hook(src, dst, packet, wire_bytes)
        rate = (
            self.loss_filter(src, dst)
            if self.loss_filter is not None
            else self.bit_error_rate
        )
        if rate and self._rng.random() < rate:
            return LinkVerdict(drop=True)
        return None

    def transmit(self, src: str, dst: str, packet: Any, wire_bytes: int) -> None:
        """Send ``packet`` from ``src`` to ``dst``.

        Serialisation happens on the source port; after the propagation
        delay the packet is handed to the destination's handler.  The
        source port must exist; a missing destination is a programming
        error surfaced at delivery time.
        """
        port = self.ports[src]
        port.tx_packets += 1
        port.tx_bytes += wire_bytes
        verdict = self._judge(src, dst, packet, wire_bytes)
        if verdict is not None and verdict.drop:
            self.dropped += 1
            return
        corrupt = verdict is not None and verdict.corrupt
        if hasattr(packet, "corrupt"):
            # The flag is re-stamped on every (re)transmission of the
            # same packet object, so a retransmit starts clean.
            packet.corrupt = corrupt
        if corrupt:
            self.corrupted += 1
        extra_delay = verdict.extra_delay_ns if verdict is not None else 0.0
        tx_time = wire_bytes / self.profile.link_bw
        if verdict is not None and verdict.tx_mult != 1.0:
            tx_time *= max(1.0, verdict.tx_mult)
        dst_port = self.ports[dst]
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.span(
                "wire %s->%s" % (src, dst),
                self.sim.now,
                self.sim.now + tx_time + self.profile.wire_delay_ns,
                "%d bytes" % wire_bytes,
            )
        delay = self.profile.wire_delay_ns + extra_delay
        served = port.tx.serve(tx_time)
        served.add_callback(
            lambda _e: self.sim.call_in(delay, lambda: dst_port.deliver(packet))
        )
        if verdict is not None and verdict.duplicate > 0:
            # Duplicates consume wire capacity like any other packet.
            for copy in range(verdict.duplicate):
                self.duplicated += 1
                dup_delay = delay + (copy + 1) * verdict.dup_delay_ns
                dup_served = port.tx.serve(tx_time)
                dup_served.add_callback(
                    lambda _e, _d=dup_delay: self.sim.call_in(
                        _d, lambda: dst_port.deliver(packet)
                    )
                )
