"""The switched fabric connecting machines.

InfiniBand/RoCE links are lossless (credit-based / priority flow
control, Section 2.2.3), so the fabric never drops packets on its own.
Each machine has one full-duplex port: a transmit-side
:class:`~repro.sim.FifoServer` models serialisation onto the wire, and a
fixed propagation + switch delay follows.  An optional bit-error rate
supports the failure-injection experiments (bit errors are the paper's
only loss source; affected messages are simply dropped and it is the
application's job to retry).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, Optional

from repro.sim import FifoServer, Simulator
from repro.hw.params import HardwareProfile

#: A delivery callback: receives the packet object.
DeliverFn = Callable[[Any], None]


class Port:
    """One machine's full-duplex fabric port."""

    def __init__(self, sim: Simulator, profile: HardwareProfile, name: str) -> None:
        self.sim = sim
        self.profile = profile
        self.tx = FifoServer(sim, name + ".tx")
        self.deliver: DeliverFn = _unattached
        self.tx_packets = 0
        self.tx_bytes = 0


def _unattached(packet: Any) -> None:
    raise RuntimeError("port has no delivery handler attached")


class Fabric:
    """A non-blocking crossbar switch between named machines.

    The models in this repo run client counts into the hundreds; a real
    cluster has per-link contention, but the paper's bottlenecks are all
    at the *server's* NIC and PCIe bus, so a crossbar with per-port
    serialisation captures the relevant contention (the server's own
    port is shared by all of its traffic).
    """

    def __init__(self, sim: Simulator, profile: HardwareProfile, loss_seed: int = 1) -> None:
        self.sim = sim
        self.profile = profile
        self.ports: Dict[str, Port] = {}
        #: probability that any one packet is corrupted on the wire
        self.bit_error_rate = 0.0
        #: optional fn(src, dst) -> loss rate, overriding the flat rate
        #: (lets failure-injection tests target one direction)
        self.loss_filter: Optional[Callable[[str, str], float]] = None
        self._rng = random.Random(loss_seed)
        self.dropped = 0

    def attach(self, name: str, deliver: DeliverFn) -> Port:
        """Register machine ``name`` and its packet-delivery handler."""
        if name in self.ports:
            raise ValueError("machine %r already attached" % name)
        port = Port(self.sim, self.profile, name)
        port.deliver = deliver
        self.ports[name] = port
        return port

    def transmit(self, src: str, dst: str, packet: Any, wire_bytes: int) -> None:
        """Send ``packet`` from ``src`` to ``dst``.

        Serialisation happens on the source port; after the propagation
        delay the packet is handed to the destination's handler.  The
        source port must exist; a missing destination is a programming
        error surfaced at delivery time.
        """
        port = self.ports[src]
        port.tx_packets += 1
        port.tx_bytes += wire_bytes
        rate = (
            self.loss_filter(src, dst)
            if self.loss_filter is not None
            else self.bit_error_rate
        )
        if rate and self._rng.random() < rate:
            self.dropped += 1
            return
        tx_time = wire_bytes / self.profile.link_bw
        dst_port = self.ports[dst]
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.span(
                "wire %s->%s" % (src, dst),
                self.sim.now,
                self.sim.now + tx_time + self.profile.wire_delay_ns,
                "%d bytes" % wire_bytes,
            )
        served = port.tx.serve(tx_time)
        served.add_callback(
            lambda _e: self.sim.call_in(
                self.profile.wire_delay_ns, lambda: dst_port.deliver(packet)
            )
        )
