"""Hardware profiles and calibration constants.

All times are nanoseconds; all sizes are bytes; bandwidths are bytes per
nanosecond (1 B/ns = 8 Gbps).  The constants are calibrated so that the
simulator reproduces the microbenchmark numbers the paper reports for
ConnectX-3 RNICs (see DESIGN.md §4):

* inbound WRITE rate  ~= 35 Mops  (Figure 3b)
* inbound READ rate   ~= 26 Mops  (Figure 3b)
* outbound READ rate  ~= 22 Mops  (Figure 4b)
* SEND/SEND echo rate ~= 21 Mops  (Figure 5)
* verb latency        ~= 1-2 us   (Figure 2b)
* ``post_send()``     ~= 150 ns, DRAM access 60-120 ns (Section 4.1.1)
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


@dataclass(frozen=True)
class HardwareProfile:
    """Every constant the hardware models need, for one cluster."""

    name: str

    # ---- link / fabric -------------------------------------------------
    #: usable link bandwidth, bytes per ns (56 Gbps => 7 B/ns)
    link_bw: float
    #: one-way propagation + switch traversal for a small packet
    wire_delay_ns: float
    #: per-packet wire overhead (LRH + BTH + CRCs)
    wire_header_bytes: int = 30
    #: extra wire bytes for UD datagrams (DETH); RoCE adds a GRH too
    ud_header_bytes: int = 8
    #: whether a 40-byte GRH travels on the wire for UD (RoCE does this)
    roce: bool = False

    # ---- PCIe ----------------------------------------------------------
    #: PIO (programmed IO): fixed doorbell cost ...
    pio_base_ns: float = 16.0
    #: ... plus this much per 64-byte write-combining cacheline
    pio_per_cacheline_ns: float = 12.0
    #: DMA read (non-posted): per-transaction engine occupancy
    dma_read_ns: float = 25.0
    #: DMA read: extra pipeline latency (a PCIe round trip), not occupancy
    dma_read_latency_ns: float = 250.0
    #: DMA write (posted): per-transaction engine occupancy
    dma_write_ns: float = 15.0
    #: DMA write: extra pipeline latency
    dma_write_latency_ns: float = 50.0
    #: atomic read-modify-write: extra *locked* occupancy beyond the
    #: read and write-back.  ConnectX NICs serialise IB atomics with an
    #: internal lock that stalls the DMA engine for the whole PCIe
    #: round trip, which is why CmpSwap/FetchAdd run an order of
    #: magnitude slower than READs (~2.7 Mops on ConnectX-3 vs 26 Mops;
    #: Kalia et al., "Design Guidelines", and Section 3.2.2's PCIe
    #: argument).  25 + 330 + 15 + payload => ~372 ns per atomic.
    pcie_atomic_ns: float = 330.0
    #: PCIe data bandwidth, bytes/ns (PCIe 3.0 x8 ~= 7.88)
    pcie_bw: float = 7.88
    cacheline_bytes: int = 64

    # ---- RNIC processing engines (per-operation occupancy) -------------
    nic_egress_ns: float = 28.5        # inline WRITE/SEND issue: 35 Mops
    nic_egress_read_ns: float = 45.5   # outbound READ issue: 22 Mops
    nic_ingress_write_ns: float = 28.5  # inbound WRITE: 35 Mops
    nic_ingress_read_ns: float = 38.5   # inbound READ request: 26 Mops
    nic_ingress_send_ns: float = 44.0   # inbound SEND + RECV match: 21 Mops end to end
    nic_ingress_resp_ns: float = 20.0   # READ response / ACK bookkeeping
    nic_ingress_ack_ns: float = 10.0    # pure ACK (RC) processing
    nic_ingress_atomic_ns: float = 40.0  # inbound CmpSwap/FetchAdd decode
    #: DMA-read transactions needed to egress a non-inlined payload
    #: (WQE fetch + payload fetch).  This base cost vs PIO's
    #: per-cacheline cost places the inline/DMA crossover between 144
    #: and 192 bytes for UD SENDs — which is why HERD's response
    #: inlining cutoff is 144 B on Apt (Section 5.3)
    non_inline_fetch_transactions: int = 2

    # ---- WQE geometry (determines PIO cachelines) ----------------------
    wqe_ctrl_bytes: int = 16        # control segment
    wqe_raddr_bytes: int = 16       # remote address segment (RDMA verbs)
    wqe_av_bytes: int = 48          # UD address vector segment
    wqe_data_ptr_bytes: int = 16    # scatter/gather pointer (non-inline)
    wqe_inline_hdr_bytes: int = 4   # inline data header
    wqe_atomic_bytes: int = 16      # atomic segment (compare/swap operands)
    #: receive buffers for UD leave room for a 40-byte GRH
    grh_bytes: int = 40

    # ---- QP context cache (on-NIC SRAM) ---------------------------------
    #: capacity in context units (responder ctx = 1 unit, requester = 2)
    qp_cache_units: int = 280
    qp_requester_units: int = 2
    qp_responder_units: int = 1
    #: added engine occupancy per context *unit* fetched over PCIe on a
    #: miss — requester contexts are larger, so their misses hurt more
    #: (the asymmetry behind Figure 6)
    qp_cache_miss_ns_per_unit: float = 75.0

    # ---- transport limits ----------------------------------------------
    max_inline: int = 256
    max_outstanding_reads: int = 16
    mtu: int = 4096

    # ---- CPU / memory ---------------------------------------------------
    #: CPU-side driver cost of post_send(); the WQE's PIO write on the
    #: shared bus adds ~30-40 ns, totalling the ~150 ns the paper reports
    post_send_ns: float = 110.0
    #: CPU cost per posted RECV, assuming batched postings (one doorbell
    #: amortised over a batch), as optimised SEND/RECV code does
    post_recv_ns: float = 60.0
    dram_ns: float = 90.0          # random DRAM access (60-120 ns in paper)
    prefetch_hit_ns: float = 10.0  # access already covered by a prefetch
    poll_check_ns: float = 2.5     # checking one request slot (L3-resident)
    cq_poll_ns: float = 30.0       # polling a completion queue entry

    # ---- HERD policy ----------------------------------------------------
    #: value size at which HERD switches responses to non-inlined SENDs
    herd_inline_cutoff: int = 144

    def replace(self, **kwargs) -> "HardwareProfile":
        """A copy of this profile with some constants overridden."""
        return dataclasses.replace(self, **kwargs)

    # -- derived geometry helpers ----------------------------------------

    def pio_cachelines(self, wqe_bytes: int) -> int:
        """Write-combining cachelines needed to PIO a WQE of this size."""
        if wqe_bytes <= 0:
            return 0
        cl = self.cacheline_bytes
        return -(-wqe_bytes // cl)  # ceil division

    def pio_ns(self, wqe_bytes: int) -> float:
        """PIO cost of pushing one WQE through the write-combining path."""
        return self.pio_base_ns + self.pio_per_cacheline_ns * self.pio_cachelines(wqe_bytes)

    def wire_bytes(self, payload_bytes: int, ud: bool = False) -> int:
        """Bytes this packet occupies on the wire."""
        size = self.wire_header_bytes + payload_bytes
        if ud:
            size += self.ud_header_bytes
            if self.roce:
                size += self.grh_bytes
        return size


#: Emulab Apt: Xeon E5-2450, ConnectX-3 MX354A, 56 Gbps IB, PCIe 3.0 x8.
APT = HardwareProfile(
    name="apt",
    link_bw=7.0,          # 56 Gbps
    wire_delay_ns=600.0,
)

#: PRObE Susitna: Opteron 6272, ConnectX-3 MX313A, 40 Gbps RoCE, PCIe 2.0
#: x8.  The slower PCIe bus throttles PIO and DMA; RoCE carries a GRH.
SUSITNA = HardwareProfile(
    name="susitna",
    link_bw=5.0,          # 40 Gbps
    wire_delay_ns=650.0,
    roce=True,
    pio_base_ns=20.0,
    pio_per_cacheline_ns=24.0,   # PCIe 2.0 x8: half the PIO bandwidth
    dma_read_ns=40.0,
    dma_read_latency_ns=350.0,
    dma_write_ns=24.0,
    pcie_bw=3.2,                 # PCIe 2.0 x8 effective
    herd_inline_cutoff=192,
)
