"""The RNIC's on-chip queue-pair context cache.

RNICs keep very little SRAM for address translation and QP state
(Section 3.3, citing [26]).  When the set of *active* queue pairs
outgrows this cache, every verb can incur a PCIe fetch of the context,
which is what collapses outbound WRITE throughput in the all-to-all
experiment (Figure 6) and bends HERD's scaling curve past ~260 clients
(Figure 12).

We model the cache with **random replacement** (as NIC SRAM caches
effectively behave under cyclic access; LRU would thrash 0-or-100%).
Requester-side contexts are heavier than responder-side ones — the
paper's explanation for why inbound WRITEs scale while outbound ones do
not — so entries have per-role unit sizes.
"""

from __future__ import annotations

import random
from typing import Dict, Hashable

from repro.hw.params import HardwareProfile


class QpContextCache:
    """Fixed-capacity context cache with random replacement."""

    def __init__(self, profile: HardwareProfile, seed: int = 0) -> None:
        self.profile = profile
        self.capacity = profile.qp_cache_units
        self._rng = random.Random(seed)
        self._entries: Dict[Hashable, int] = {}  # key -> units
        # Parallel structures for O(1) random victim selection.
        self._keys: list = []
        self._key_index: Dict[Hashable, int] = {}
        self._used = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def access(self, key: Hashable, requester: bool) -> bool:
        """Touch the context for ``key``; returns True on a hit.

        A miss inserts the context, evicting random victims until it
        fits.  The caller adds :attr:`HardwareProfile.qp_cache_miss_ns`
        of engine occupancy on a miss.
        """
        if key in self._entries:
            self.hits += 1
            return True
        self.misses += 1
        units = (
            self.profile.qp_requester_units
            if requester
            else self.profile.qp_responder_units
        )
        if units > self.capacity:
            raise ValueError("context larger than the whole cache")
        while self._used + units > self.capacity:
            self._evict_random()
        self._entries[key] = units
        self._key_index[key] = len(self._keys)
        self._keys.append(key)
        self._used += units
        return False

    def _evict_random(self) -> None:
        """Remove one random resident context (O(1) swap-pop)."""
        slot = self._rng.randrange(len(self._keys))
        victim = self._keys[slot]
        last = self._keys[-1]
        self._keys[slot] = last
        self._key_index[last] = slot
        self._keys.pop()
        del self._key_index[victim]
        self._used -= self._entries.pop(victim)
        self.evictions += 1

    def miss_penalty_ns(self, hit: bool, requester: bool = False) -> float:
        """Extra engine occupancy implied by an access outcome.

        A missed requester context costs more to fetch than a missed
        responder context because it is larger — the same asymmetry
        that makes inbound WRITEs scale while outbound ones collapse
        (Figure 6).
        """
        if hit:
            return 0.0
        units = (
            self.profile.qp_requester_units
            if requester
            else self.profile.qp_responder_units
        )
        return units * self.profile.qp_cache_miss_ns_per_unit

    @property
    def used_units(self) -> int:
        return self._used

    @property
    def resident_contexts(self) -> int:
        return len(self._entries)

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 1.0

    def stats(self) -> Dict[str, float]:
        """Counter snapshot for reports and the metrics registry."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hit_rate(),
            "resident_contexts": self.resident_contexts,
            "used_units": self.used_units,
        }
