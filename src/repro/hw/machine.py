"""A machine: CPU cores + DRAM + PCIe bus + RNIC engines + fabric port.

The RNIC itself is modelled as a set of serialised engines (ingress
processing, egress processing) sharing the machine's PCIe bus and a
QP-context cache.  The *protocol* run by those engines lives in
:mod:`repro.verbs`; this class only owns the timed resources.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim import FifoServer, Simulator
from repro.hw.link import Fabric, Port
from repro.hw.memory import MemorySystem
from repro.hw.params import HardwareProfile
from repro.hw.pcie import PcieBus
from repro.hw.qpcache import QpContextCache


class Machine:
    """Timed hardware resources for one host and its RNIC."""

    def __init__(
        self,
        sim: Simulator,
        fabric: Fabric,
        name: str,
        profile: Optional[HardwareProfile] = None,
        cores: int = 16,
        cache_seed: int = 0,
    ) -> None:
        self.sim = sim
        self.fabric = fabric
        self.name = name
        self.profile = profile if profile is not None else fabric.profile
        self.cores = cores
        self.pcie = PcieBus(sim, self.profile, name + ".pcie")
        self.memory = MemorySystem(self.profile)
        #: RNIC packet-processing engines.  Ingress and egress are
        #: independent pipelines (the card services ~60 Mops total
        #: bidirectionally, Section 3.2.2).
        self.nic_ingress = FifoServer(sim, name + ".nic.rx")
        self.nic_egress = FifoServer(sim, name + ".nic.tx")
        self.qp_cache = QpContextCache(self.profile, seed=cache_seed)
        self.port: Port = fabric.attach(name, self._deliver)
        self._packet_handler: Optional[Callable[[Any], None]] = None
        metrics = getattr(sim, "metrics", None)
        if metrics is not None:
            metrics.watch_qp_cache(name, self.qp_cache)

    def attach_packet_handler(self, handler: Callable[[Any], None]) -> None:
        """Install the verbs-layer packet handler (one per machine)."""
        self._packet_handler = handler

    def _deliver(self, packet: Any) -> None:
        if self._packet_handler is None:
            raise RuntimeError("machine %r has no verbs device attached" % self.name)
        self._packet_handler(packet)

    def transmit(self, dst: str, packet: Any, wire_bytes: int) -> None:
        """Serialise a packet onto this machine's port toward ``dst``."""
        self.fabric.transmit(self.name, dst, packet, wire_bytes)
