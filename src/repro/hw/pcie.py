"""The PCIe bus between a host CPU/DRAM and its RNIC.

Three serialised paths are modelled, because the paper's results hinge
on their asymmetry (Section 3.2.2):

* **PIO** — the CPU writes WQEs into the NIC through write-combining
  buffers.  Cost is per 64-byte cacheline, which produces the stepwise
  throughput decline of inlined WRITEs at 64-byte payload intervals
  (Figure 4b).
* **DMA read** — *non-posted* transactions: the NIC must keep request
  state until the completion returns, so these are expensive.  Fetching
  a non-inlined payload costs several transactions (WQE fetch, address
  translation, payload fetch).
* **DMA write** — *posted* transactions: fire-and-forget, cheap.

Each path separates *occupancy* (which limits throughput) from
*pipeline latency* (which delays an individual transaction but is
overlapped across transactions).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.sim import Event, FifoServer, Simulator
from repro.hw.params import HardwareProfile


class PcieBus:
    """One host's PCIe connection to its RNIC."""

    def __init__(self, sim: Simulator, profile: HardwareProfile, name: str = "pcie") -> None:
        self.sim = sim
        self.profile = profile
        self.pio = FifoServer(sim, name + ".pio")
        #: one DMA engine serves reads and writes: completion-event DMA
        #: writes steal capacity from payload DMA — the "extra overhead
        #: on the RNIC's PCIe bus" of Section 2.2.2 that makes selective
        #: signaling worth using
        self.dma = FifoServer(sim, name + ".dma")

    # -- PIO --------------------------------------------------------------

    def pio_write(self, wqe_bytes: int) -> Event:
        """Push one WQE (doorbell included) through write-combining PIO."""
        return self.pio.serve(self.profile.pio_ns(wqe_bytes))

    def doorbell(self) -> Event:
        """Ring a bare doorbell (no WQE body), e.g. for batched RECVs."""
        return self.pio.serve(self.profile.pio_base_ns)

    # -- DMA --------------------------------------------------------------

    def dma_read(self, payload_bytes: int, transactions: int = 1) -> Event:
        """NIC-initiated read of host memory (non-posted).

        ``transactions`` counts the round trips the engine must issue;
        occupancy scales with transactions and payload, while the
        pipeline latency is paid once.
        """
        p = self.profile
        occupancy = p.dma_read_ns * transactions + payload_bytes / p.pcie_bw
        done = self.sim.event()
        served = self.dma.serve(occupancy)
        served.add_callback(
            lambda _e: self.sim.call_in(p.dma_read_latency_ns, done.succeed)
        )
        return done

    def dma_write(self, payload_bytes: int) -> Event:
        """NIC-initiated write into host memory (posted)."""
        p = self.profile
        occupancy = p.dma_write_ns + payload_bytes / p.pcie_bw
        done = self.sim.event()
        served = self.dma.serve(occupancy)
        served.add_callback(
            lambda _e: self.sim.call_in(p.dma_write_latency_ns, done.succeed)
        )
        return done

    def dma_atomic(self, on_locked: Optional[Callable[[], None]] = None) -> Event:
        """A locked read-modify-write for a remote atomic (CmpSwap/FetchAdd).

        ConnectX NICs implement IB atomics as a non-posted read plus a
        posted write-back issued under an internal lock that stalls the
        DMA engine for the whole round trip — which is what makes
        atomics an order of magnitude slower than READs and, crucially,
        *serialised per device*: the single ``dma`` FifoServer never
        overlaps two occupancy periods, so two concurrent atomics
        targeting this host execute one after the other.

        ``on_locked`` runs exactly at the end of the occupancy period —
        the serialisation point — so the caller's memory mutation is
        atomic with respect to every other atomic on this bus.  The
        returned event fires after the pipeline latency, when the
        original value is available to send back.
        """
        p = self.profile
        occupancy = (
            p.dma_read_ns
            + p.pcie_atomic_ns
            + p.dma_write_ns
            + 16 / p.pcie_bw  # one quadword each way
        )
        done = self.sim.event()
        served = self.dma.serve(occupancy)

        def _unlocked(_e: Event) -> None:
            if on_locked is not None:
                on_locked()
            self.sim.call_in(p.dma_read_latency_ns, done.succeed)

        served.add_callback(_unlocked)
        return done
