"""HERD's request pipeline (Section 4.1.1).

To mask DRAM latency without driver-level batching, HERD pipelines
requests at the application level: when a request is in stage *i* it
performs its *i*-th memory access, for which a prefetch was issued in
the previous stage.  The pipeline is as deep as MICA's worst-case
access count (two), so a request's response is sent while the *next*
request's memory is being prefetched — the prefetches hide behind
``post_send()``.

A server that sees no new request for ``noop_after_polls`` consecutive
poll iterations pushes a *no-op* bubble so the requests already in the
pipeline still complete (the deadlock avoidance rule from the paper).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generic, Optional, TypeVar

T = TypeVar("T")


class RequestPipeline(Generic[T]):
    """A fixed-depth FIFO of in-flight requests."""

    def __init__(self, depth: int = 2) -> None:
        if depth < 1:
            raise ValueError("pipeline depth must be >= 1")
        self.depth = depth
        self._stages: Deque[T] = deque()
        self.noops = 0

    def push(self, item: Optional[T]) -> Optional[T]:
        """Advance the pipeline by one slot.

        ``item`` is the newly detected request, or ``None`` for a no-op
        bubble.  Returns the request that just completed its final
        stage (None when a bubble pops out or the pipeline is filling).
        """
        if item is None:
            # A bubble advances real work toward completion.
            self.noops += 1
            return self._stages.popleft() if self._stages else None
        completed: Optional[T] = None
        if len(self._stages) >= self.depth:
            completed = self._stages.popleft()
        self._stages.append(item)
        return completed

    def __len__(self) -> int:
        return len(self._stages)

    def __bool__(self) -> bool:
        return bool(self._stages)
