"""Wires a full HERD deployment onto a simulated fabric.

Mirrors the paper's setup (Section 5.1): one server machine running NS
server processes (each on its own core), client processes spread over a
set of client machines, one UC QP per client process at the server (the
initializer's connections), and NS UD QPs per client for responses.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bench.result import RunResult, collect
from repro.obs.report import RunReport
from repro.faults.rng import child_rng, derive_seed
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.sim import LatencyRecorder, RateMeter, Simulator
from repro.verbs import RdmaDevice, Transport
from repro.workloads.ycsb import Workload, value_for
from repro.herd.client import HerdClientProcess
from repro.herd.config import HerdConfig, route_key
from repro.herd.region import RequestRegion
from repro.herd.server import HerdServerProcess


class HaRuntime:
    """Everything the cluster builds only when ``replication_factor > 1``.

    Held as ``cluster.ha`` (None in an unreplicated cluster, so the
    classic simulation constructs no HA machinery at all — not even the
    extra machines — and stays event-for-event identical).
    """

    def __init__(self) -> None:
        #: replica id -> RdmaDevice (index 0 is the classic server)
        self.devices = []
        #: replica id -> RequestRegion on that replica's machine
        self.regions = []
        #: replica id -> [HerdServerProcess per partition]
        self.replica_servers = []
        #: partition -> PartitionGroup (cross-replica checker evidence)
        self.groups = []
        #: replica id -> HaNode (replication dataplane)
        self.nodes = []
        self.monitor = None  # LeaseMonitor


class HerdCluster:
    """A complete HERD system on one simulated fabric."""

    def __init__(
        self,
        config: Optional[HerdConfig] = None,
        profile: HardwareProfile = APT,
        n_client_machines: int = 17,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else HerdConfig()
        self.profile = profile
        self.seed = seed
        self.sim = Simulator()
        # Every randomness source gets its own named child stream of the
        # cluster seed (repro.faults.rng): enabling loss or fault
        # injection must not perturb workload or cache draws.
        self.fabric = Fabric(
            self.sim, profile, loss_seed=derive_seed(seed, "fabric.loss")
        )
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.clients: List[HerdClientProcess] = []
        self.servers: List[HerdServerProcess] = []
        self.region: Optional[RequestRegion] = None
        self.injector = None  # set by install_faults()
        #: ElasticRuntime (repro.elastic) when n_active_partitions is
        #: set; None keeps the classic static sharding
        self.elastic = None
        #: QosRuntime (repro.qos) when ``config.qos`` is set; None keeps
        #: the classic admit-everything server loop
        self.qos_runtime = None
        self._wired = False
        # Replica machines (rep1..rep{rf-1}) and the lease monitor get
        # their own NICs on the same fabric; their cache RNGs are named
        # child streams of the cluster seed so enabling replication
        # cannot perturb the classic machines' draws.
        self.ha: Optional[HaRuntime] = None
        rf = self.config.replication_factor
        if rf > 1:
            self._ha_devices = [
                RdmaDevice(
                    Machine(
                        self.sim,
                        self.fabric,
                        "rep%d" % r,
                        cache_seed=derive_seed(seed, "ha.rep%d" % r),
                    )
                )
                for r in range(1, rf)
            ]
            self._monitor_device = RdmaDevice(
                Machine(
                    self.sim,
                    self.fabric,
                    "monitor",
                    cache_seed=derive_seed(seed, "ha.monitor"),
                )
            )

    # ------------------------------------------------------------------

    def add_clients(self, n: int, workload: Workload, arrival_factory=None) -> None:
        """Create ``n`` client processes, round-robin over machines.

        ``arrival_factory(cid, rng)`` (optional) returns an open-loop
        :class:`repro.workloads.ArrivalProcess` for client ``cid``; the
        rng is a named child stream of the cluster seed, so attaching
        arrivals never perturbs workload or retry draws.  Without a
        factory clients run the paper's closed loop.
        """
        if self._wired:
            raise RuntimeError("cannot add clients after wiring")
        for i in range(n):
            cid = len(self.clients)
            device = self.client_devices[cid % len(self.client_devices)]
            stream = workload.stream(seed=self.seed * 1_000_003 + cid)
            client = HerdClientProcess(
                cid,
                device,
                self.config,
                stream,
                retry_rng=child_rng(self.seed, "client%d.retry" % cid),
            )
            if arrival_factory is not None:
                client.arrivals = arrival_factory(
                    cid, child_rng(self.seed, "qos.client%d.arrivals" % cid)
                )
            self.clients.append(client)

    def wire(self) -> None:
        """Create the request region, server processes, and all QPs."""
        if self._wired:
            return
        if not self.clients:
            raise RuntimeError("add clients before wiring")
        nc = len(self.clients)
        self.region = RequestRegion(self.sim, self.server_device, self.config, nc)
        if self.config.request_transport == "DC":
            # Dynamically Connected: every client addresses one shared
            # DC target at the server, so the server NIC caches a
            # single responder context however many clients exist.
            dct = self.server_device.create_qp(Transport.DC)
            for client in self.clients:
                client_qp = client.device.create_qp(Transport.DC)
                client.uc_qp = client_qp
                client.dct_ah = ("server", dct.qpn)
                client.region = self.region
        else:
            qos = self.config.qos
            if qos is not None and qos.qp_pool is not None and qos.qp_pool < nc:
                # Bounded QP pool (repro.qos): clients share a fixed set
                # of server-side UC QPs round-robin, so client count no
                # longer scales the server NIC's connected-QP footprint
                # (the Figure 12 QP-cache cliff).  Sharing is safe for
                # requests: the server never sends on these QPs, and
                # inbound WRITEs resolve their MR by raddr/rkey alone.
                pool = [
                    self.server_device.create_qp(Transport.UC)
                    for _ in range(qos.qp_pool)
                ]
                connected = [False] * len(pool)
                for client in self.clients:
                    index = client.client_id % len(pool)
                    server_qp = pool[index]
                    client_qp = client.device.create_qp(Transport.UC)
                    client_qp.connect("server", server_qp.qpn)
                    if not connected[index]:
                        # the pool QP's peer is inert (the server never
                        # sends on it); aim it at its first client so
                        # the QP reaches RTS like any connected QP
                        server_qp.connect(client.device.machine.name, client_qp.qpn)
                        connected[index] = True
                    client.uc_qp = client_qp
                    client.region = self.region
            else:
                # The initializer's UC connections: one per client process.
                for client in self.clients:
                    server_qp = self.server_device.create_qp(Transport.UC)
                    client_qp = client.device.create_qp(Transport.UC)
                    server_qp.connect(client.device.machine.name, client_qp.qpn)
                    client_qp.connect("server", server_qp.qpn)
                    client.uc_qp = client_qp
                    client.region = self.region
        # Server processes, each with the response AH table.
        for s in range(self.config.n_server_processes):
            ahs = [
                (client.device.machine.name, client.ud_qps[s].qpn)
                for client in self.clients
            ]
            self.servers.append(
                HerdServerProcess(s, self.server_device, self.region, self.config, ahs)
            )
        if self.config.qos is not None:
            from repro.qos import QosRuntime

            self.qos_runtime = QosRuntime(
                self.config.qos, self.config.n_server_processes
            )
            self.region.stamp_arrivals = True
            for server in self.servers:
                server.admission = self.qos_runtime.partition(server.index)
        if self.config.replication_factor > 1:
            self._wire_ha()
        self._wired = True

    def _wire_ha(self) -> None:
        """Backup replicas, the replication mesh, and the lease monitor.

        Replica r of partition s is a *full* HerdServerProcess on
        machine ``rep<r>`` with its own request region and MICA store;
        clients answer it on UD lane ``r*NS + s`` and reach its region
        over a dedicated UC QP per (client, replica) pair.  See
        docs/HA.md for the dataplane layout.
        """
        from repro.ha import (
            HaNode,
            LeaseMonitor,
            PartitionGroup,
            ReplicaMap,
            ReplicaRole,
        )

        cfg = self.config
        ns = cfg.n_server_processes
        rf = cfg.replication_factor
        nc = len(self.clients)
        ha = HaRuntime()
        ha.devices = [self.server_device] + self._ha_devices
        ha.regions = [self.region]
        ha.replica_servers = [self.servers]
        for r in range(1, rf):
            device = ha.devices[r]
            region = RequestRegion(self.sim, device, cfg, nc)
            ha.regions.append(region)
            servers_r = []
            for s in range(ns):
                ahs = [
                    (client.device.machine.name, client.ud_qps[r * ns + s].qpn)
                    for client in self.clients
                ]
                servers_r.append(HerdServerProcess(s, device, region, cfg, ahs))
            ha.replica_servers.append(servers_r)
        # Per-client UC connections into each backup's request region
        # (replica 0 reuses the classic connection).
        for client in self.clients:
            client.ha_map = ReplicaMap(ns, rf)
            client.ha_regions = ha.regions
            client.ha_uc_qps = [client.uc_qp]
            for r in range(1, rf):
                server_qp = ha.devices[r].create_qp(Transport.UC)
                client_qp = client.device.create_qp(Transport.UC)
                server_qp.connect(client.device.machine.name, client_qp.qpn)
                client_qp.connect(ha.devices[r].machine.name, server_qp.qpn)
                client.ha_uc_qps.append(client_qp)
        # Roles: one per (partition, replica), grouped per partition.
        roles_by_replica: List[List[ReplicaRole]] = [[] for _ in range(rf)]
        for s in range(ns):
            group = PartitionGroup(s, cfg)
            ha.groups.append(group)
            for r in range(rf):
                role = ReplicaRole(s, r, cfg, group)
                server = ha.replica_servers[r][s]
                role.server = server
                server.ha_role = role
                roles_by_replica[r].append(role)
        ha.nodes = [
            HaNode(r, ha.devices[r], cfg, roles_by_replica[r]) for r in range(rf)
        ]
        # The RC replication mesh: one connected QP pair per machine pair.
        for a in range(rf):
            for b in range(a + 1, rf):
                qp_a = ha.devices[a].create_qp(
                    Transport.RC, recv_cq=ha.nodes[a].mesh_cq
                )
                qp_b = ha.devices[b].create_qp(
                    Transport.RC, recv_cq=ha.nodes[b].mesh_cq
                )
                qp_a.connect(ha.devices[b].machine.name, qp_b.qpn)
                qp_b.connect(ha.devices[a].machine.name, qp_a.qpn)
                ha.nodes[a].add_peer(b, qp_a)
                ha.nodes[b].add_peer(a, qp_b)
        # The lease monitor, with control paths to every replica and
        # out-of-band config fan-out to every client.
        ha.monitor = LeaseMonitor(self.sim, self._monitor_device, cfg, ns)
        for r in range(rf):
            ha.monitor.replica_ahs[r] = (
                ha.devices[r].machine.name,
                ha.nodes[r].ctrl_qp.qpn,
            )
            ha.nodes[r].monitor_ah = ("monitor", ha.monitor.ud_qp.qpn)
        for client in self.clients:
            ha.monitor.config_listeners.append(client.ha_on_config)
        self.ha = ha
        if cfg.n_active_partitions is not None:
            self._wire_elastic(ha)

    def _wire_elastic(self, ha: HaRuntime) -> None:
        """The shard-map coordinator and one ElasticAgent per machine.

        The coordinator runs beside the lease monitor (same machine,
        same NIC) so it can read the monitor's live primary/epoch view
        synchronously; agents hang off their machine's HaNode and share
        its RC mesh and UD control QP.  Clients start on the initial
        striped map and hear newer ones via ``map_listeners`` — the
        elastic sibling of the monitor's config fan-out.
        """
        from repro.elastic import ElasticAgent, ElasticRuntime, ShardCoordinator, ShardMap

        cfg = self.config
        rf = cfg.replication_factor
        initial = ShardMap.striped(cfg.n_active_partitions)
        coordinator = ShardCoordinator(
            self.sim, self._monitor_device, cfg, ha.monitor, initial
        )
        agents = []
        for r in range(rf):
            agent = ElasticAgent(ha.nodes[r], initial)
            agent.coordinator_ah = ("monitor", coordinator.ud_qp.qpn)
            ha.nodes[r].elastic = agent
            agents.append(agent)
            coordinator.node_ahs[r] = ha.monitor.replica_ahs[r]
        for client in self.clients:
            client.shard_map = initial
            coordinator.map_listeners.append(client.elastic_on_map)
        self.elastic = ElasticRuntime(coordinator, agents)

    def install_faults(self, plan) -> "object":
        """Install a :class:`repro.faults.FaultPlan` onto this cluster.

        Wires the cluster first if needed (crash rules must resolve
        server processes).  Returns the live injector, also kept as
        ``self.injector`` for counter inspection after the run.
        """
        from repro.faults import FaultInjector

        if not self._wired:
            self.wire()
        self.injector = FaultInjector(plan, self)
        return self.injector

    # ------------------------------------------------------------------

    def preload(self, items: range, value_size: int) -> None:
        """Load items directly into the server partitions (offline warm
        start, like running a load phase before the measurement)."""
        from repro.workloads.ycsb import keyhash

        if not self._wired:
            self.wire()
        ns = self.config.n_server_processes
        shard_map = self.elastic.shard_map if self.elastic is not None else None
        replica_servers = (
            self.ha.replica_servers if self.ha is not None else [self.servers]
        )
        for item in items:
            kh = keyhash(item)
            value = value_for(item, value_size)
            for servers in replica_servers:
                servers[route_key(kh, ns, shard_map)].store.put(kh, value)

    # ------------------------------------------------------------------

    def run(self, warmup_ns: float = 50_000.0, measure_ns: float = 200_000.0) -> RunResult:
        """Start every process and measure one window."""
        if not self._wired:
            self.wire()
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        per_server = [RateMeter(warmup_ns, window_end) for _ in self.servers]

        for client in self.clients:
            def hook(op, latency, success, now, _m=meter, _l=latencies, _prev=client.response_hook):
                _m.record(now)
                _l.record(now, latency)
                if _prev is not None:
                    _prev(op, latency, success, now)

            client.response_hook = hook
            client.start()
        for server in self.servers:
            def shook(client_id, op, now, _m=per_server[server.index], _prev=server.completion_hook):
                _m.record(now)
                if _prev is not None:
                    _prev(client_id, op, now)

            server.completion_hook = shook
            server.start()
        if self.ha is not None:
            for servers in self.ha.replica_servers[1:]:
                for server in servers:
                    server.start()
            for node in self.ha.nodes:
                node.start()
            self.ha.monitor.start()
            if self.elastic is not None:
                self.elastic.coordinator.start()

        self.sim.run(until=window_end)
        machine = self.server_device.machine
        elapsed = self.sim.now
        qos_extras = {}
        if self.qos_runtime is not None:
            qos_extras = dict(
                shed=float(self.qos_runtime.total_shed),
                offered=float(sum(c.offered for c in self.clients)),
                overflow_dropped=float(
                    sum(c.overflow_dropped for c in self.clients)
                ),
                retry_after_nacks=float(
                    sum(c.retry_after_nacks for c in self.clients)
                ),
                rejected=float(sum(c.rejected for c in self.clients)),
            )
        return collect(
            meter,
            latencies,
            measure_ns,
            per_server=per_server,
            report=RunReport.from_sim(self.sim, name="herd-cluster"),
            server_qp_cache_hit_rate=machine.qp_cache.hit_rate(),
            # Where the server machine's time went: the paper's
            # bottleneck narrative in one dict (Section 5.7: at peak,
            # the PIO path saturates first).
            util_nic_ingress=machine.nic_ingress.utilization(elapsed),
            util_nic_egress=machine.nic_egress.utilization(elapsed),
            util_pio=machine.pcie.pio.utilization(elapsed),
            util_dma=machine.pcie.dma.utilization(elapsed),
            noops=float(sum(s.noops_pushed for s in self.servers)),
            get_misses=float(sum(c.get_misses for c in self.clients)),
            retries=float(sum(c.retries for c in self.clients)),
            abandoned=float(sum(c.abandoned for c in self.clients)),
            server_crashes=float(sum(s.crashes for s in self.servers)),
            server_recoveries=float(sum(s.recoveries for s in self.servers)),
            **qos_extras,
        )
