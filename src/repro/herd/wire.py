"""HERD's request and response formats (Section 4.2).

A request slot is 1 KB.  The RNIC's DMA writes are left-to-right, so
the 16-byte keyhash sits in the *rightmost* bytes of the slot: when the
polling server sees a non-zero keyhash, the rest of the request is
already in place.  A zero keyhash marks a free slot, which is why
clients may never use one.

Slot layout (offsets relative to the slot end)::

    [ ... unused ... | value (LEN bytes) | LEN: u16 | keyhash: 16 bytes ]

A GET carries only LEN = GET_MARKER plus the keyhash (18 bytes on the
wire); a PUT carries its value, LEN, and the keyhash.  The client
WRITEs only the trailing portion of the slot.

Responses need no header: a GET hit returns the raw value, a GET miss
returns an empty message, and a PUT acknowledgement is one status byte
(the client remembers which operation each pending token was).
Keeping a 60-byte value's response WQE within two write-combining
cachelines is what lets HERD sustain peak throughput through 60-byte
items (Figure 10).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.workloads.ycsb import Operation, OpType

KEYHASH_BYTES = 16
LEN_BYTES = 2
TRAILER_BYTES = LEN_BYTES + KEYHASH_BYTES

#: LEN value that marks a GET request (values are at most 1000 bytes,
#: so this cannot collide with a real length)
GET_MARKER = 0xFFFF

_LEN = struct.Struct("<H")

PUT_OK = b"\x01"


def encode_get(keyhash: bytes, epoch: Optional[int] = None) -> bytes:
    """The trailing bytes a client WRITEs for a GET.

    In loss mode (application retries enabled) the request carries a
    one-byte slot *epoch* just before LEN: the client bumps it on every
    reuse of a window slot and the server echoes it in the response, so
    a delayed duplicate response can never be matched to a newer
    operation that happens to reuse the same slot.
    """
    _check_keyhash(keyhash)
    prefix = b"" if epoch is None else bytes([epoch & 0xFF])
    return prefix + _LEN.pack(GET_MARKER) + keyhash


def encode_put(keyhash: bytes, value: bytes, epoch: Optional[int] = None) -> bytes:
    """The trailing bytes a client WRITEs for a PUT."""
    _check_keyhash(keyhash)
    if len(value) > GET_MARKER - 1:
        raise ValueError("value too large for the LEN field")
    prefix = b"" if epoch is None else bytes([epoch & 0xFF])
    return value + prefix + _LEN.pack(len(value)) + keyhash


def request_write_offset(slot_bytes: int, payload: bytes) -> int:
    """Offset inside the slot where the trailing payload begins."""
    return slot_bytes - len(payload)


def decode_request(slot: bytes, with_epoch: bool = False):
    """Decode a request slot; None if the slot is free (zero keyhash).

    With ``with_epoch`` (loss mode) returns ``(operation, epoch)``; the
    epoch byte sits just before LEN (see :func:`encode_get`).
    """
    keyhash = slot[-KEYHASH_BYTES:]
    if keyhash == b"\x00" * KEYHASH_BYTES:
        return (None, 0) if with_epoch else None
    (length,) = _LEN.unpack(slot[-TRAILER_BYTES:-KEYHASH_BYTES])
    body_end = len(slot) - TRAILER_BYTES
    epoch = 0
    if with_epoch:
        epoch = slot[body_end - 1]
        body_end -= 1
    if length == GET_MARKER:
        op = Operation(OpType.GET, keyhash, None)
    else:
        start = body_end - length
        if start < 0:
            raise ValueError("corrupt request: LEN overruns the slot")
        op = Operation(OpType.PUT, keyhash, slot[start:body_end])
    return (op, epoch) if with_epoch else op


def encode_response(op: OpType, value: Optional[bytes]) -> bytes:
    """The SEND payload for a completed request."""
    if op is OpType.GET:
        return value if value is not None else b""
    return PUT_OK


def decode_response(op: OpType, payload: bytes) -> Tuple[bool, Optional[bytes]]:
    """Client-side decode: (success, value)."""
    if op is OpType.GET:
        if payload:
            return True, payload
        return False, None  # miss
    return payload == PUT_OK, None


def _check_keyhash(keyhash: bytes) -> None:
    if len(keyhash) != KEYHASH_BYTES:
        raise ValueError("keyhash must be exactly 16 bytes")
    if keyhash == b"\x00" * KEYHASH_BYTES:
        raise ValueError("the zero keyhash is reserved for free slots")


# ---------------------------------------------------------------------------
# High-availability extensions (repro.ha)
# ---------------------------------------------------------------------------
#
# With replication enabled the response prefix grows a *status* byte:
# ``[window_slot, request_epoch, status, body...]``.  A status byte —
# rather than an in-band magic body — keeps GET values fully opaque (a
# value may legitimately contain any bytes, so no body marker is safe).

#: response served normally; the body follows the classic encoding
RESP_OK = 0
#: the replica is no longer the partition's primary (its fencing epoch
#: is stale); the client must re-resolve the primary and replay
RESP_STALE_EPOCH = 2

#: replication / control message kinds (first byte of every message)
REP_UPDATE = 1      # primary -> backup: one sequenced PUT record
REP_ACK = 2         # backup -> primary: record applied (or stale nack)
REP_CATCHUP = 3     # backup -> primary: replay your log above my hwm
CTRL_HEARTBEAT = 4  # replica -> monitor, over UD
CTRL_GRANT = 5      # monitor -> primary: lease extension
CTRL_CONFIG = 6     # monitor -> replicas: epoch/primary/membership

#: REP_ACK statuses
ACK_APPLIED = 0
ACK_STALE = 1

# kind, partition, sender, epoch, seq, vlen, client, window_slot,
# req_epoch: the trailing three are the originating request's token, so
# a replica can recognise a client's retry of an already-applied PUT
# even after a failover (exactly-once apply)
_UPDATE_HDR = struct.Struct("<BBBIQHHBB")
_ACK_MSG = struct.Struct("<BBBIQBQ")     # kind, partition, sender, epoch, seq, status, hwm
_CATCHUP_MSG = struct.Struct("<BBBIQ")   # kind, partition, sender, epoch, from_seq
_HB_MSG = struct.Struct("<BBBBIQd")      # kind, partition, sender, primary?, epoch, hwm, sent_ns
_GRANT_MSG = struct.Struct("<BBBId")     # kind, partition, target, epoch, hb_sent_ns
_CONFIG_HDR = struct.Struct("<BBBIB")    # kind, partition, primary, epoch, n_members


def ha_kind(data: bytes) -> int:
    """The message-kind byte of an HA replication/control message."""
    return data[0]


def encode_update(
    partition: int,
    sender: int,
    epoch: int,
    seq: int,
    keyhash: bytes,
    value: bytes,
    client: int = 0,
    window_slot: int = 0,
    req_epoch: int = 0,
) -> bytes:
    """One sequenced PUT record shipped primary -> backup over RC."""
    _check_keyhash(keyhash)
    return (
        _UPDATE_HDR.pack(
            REP_UPDATE, partition, sender, epoch, seq, len(value),
            client, window_slot, req_epoch,
        )
        + keyhash
        + value
    )


def decode_update(data: bytes):
    """(partition, sender, epoch, seq, keyhash, value, client,
    window_slot, req_epoch)."""
    (
        kind, partition, sender, epoch, seq, vlen,
        client, window_slot, req_epoch,
    ) = _UPDATE_HDR.unpack_from(data)
    assert kind == REP_UPDATE
    start = _UPDATE_HDR.size
    keyhash = data[start:start + KEYHASH_BYTES]
    value = data[start + KEYHASH_BYTES:start + KEYHASH_BYTES + vlen]
    return partition, sender, epoch, seq, keyhash, value, client, window_slot, req_epoch


def encode_rep_ack(
    partition: int, sender: int, epoch: int, seq: int, status: int, hwm: int
) -> bytes:
    return _ACK_MSG.pack(REP_ACK, partition, sender, epoch, seq, status, hwm)


def decode_rep_ack(data: bytes):
    """(partition, sender, epoch, seq, status, hwm)."""
    return _ACK_MSG.unpack(data)[1:]


def encode_catchup(partition: int, sender: int, epoch: int, from_seq: int) -> bytes:
    return _CATCHUP_MSG.pack(REP_CATCHUP, partition, sender, epoch, from_seq)


def decode_catchup(data: bytes):
    """(partition, sender, epoch, from_seq)."""
    return _CATCHUP_MSG.unpack(data)[1:]


def encode_heartbeat(
    partition: int, sender: int, is_primary: bool, epoch: int, hwm: int, sent_ns: float
) -> bytes:
    return _HB_MSG.pack(
        CTRL_HEARTBEAT, partition, sender, 1 if is_primary else 0, epoch, hwm, sent_ns
    )


def decode_heartbeat(data: bytes):
    """(partition, sender, is_primary, epoch, hwm, sent_ns)."""
    _, partition, sender, primary, epoch, hwm, sent_ns = _HB_MSG.unpack(data)
    return partition, sender, bool(primary), epoch, hwm, sent_ns


def encode_grant(partition: int, target: int, epoch: int, hb_sent_ns: float) -> bytes:
    return _GRANT_MSG.pack(CTRL_GRANT, partition, target, epoch, hb_sent_ns)


def decode_grant(data: bytes):
    """(partition, target, epoch, hb_sent_ns)."""
    return _GRANT_MSG.unpack(data)[1:]


def encode_config(
    partition: int, primary: int, epoch: int, members
) -> bytes:
    members = sorted(members)
    return _CONFIG_HDR.pack(
        CTRL_CONFIG, partition, primary, epoch, len(members)
    ) + bytes(members)


def decode_config(data: bytes):
    """(partition, primary, epoch, members-tuple)."""
    _, partition, primary, epoch, n = _CONFIG_HDR.unpack_from(data)
    members = tuple(data[_CONFIG_HDR.size:_CONFIG_HDR.size + n])
    return partition, primary, epoch, members
