"""HERD's request and response formats (Section 4.2).

A request slot is 1 KB.  The RNIC's DMA writes are left-to-right, so
the 16-byte keyhash sits in the *rightmost* bytes of the slot: when the
polling server sees a non-zero keyhash, the rest of the request is
already in place.  A zero keyhash marks a free slot, which is why
clients may never use one.

Slot layout (offsets relative to the slot end)::

    [ ... unused ... | value (LEN bytes) | LEN: u16 | keyhash: 16 bytes ]

A GET carries only LEN = GET_MARKER plus the keyhash (18 bytes on the
wire); a PUT carries its value, LEN, and the keyhash.  The client
WRITEs only the trailing portion of the slot.

Responses need no header: a GET hit returns the raw value, a GET miss
returns an empty message, and a PUT acknowledgement is one status byte
(the client remembers which operation each pending token was).
Keeping a 60-byte value's response WQE within two write-combining
cachelines is what lets HERD sustain peak throughput through 60-byte
items (Figure 10).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.workloads.ycsb import Operation, OpType

KEYHASH_BYTES = 16
LEN_BYTES = 2
TRAILER_BYTES = LEN_BYTES + KEYHASH_BYTES

#: LEN value that marks a GET request (values are at most 1000 bytes,
#: so this cannot collide with a real length)
GET_MARKER = 0xFFFF

_LEN = struct.Struct("<H")

PUT_OK = b"\x01"


def encode_get(keyhash: bytes, epoch: Optional[int] = None) -> bytes:
    """The trailing bytes a client WRITEs for a GET.

    In loss mode (application retries enabled) the request carries a
    one-byte slot *epoch* just before LEN: the client bumps it on every
    reuse of a window slot and the server echoes it in the response, so
    a delayed duplicate response can never be matched to a newer
    operation that happens to reuse the same slot.
    """
    _check_keyhash(keyhash)
    prefix = b"" if epoch is None else bytes([epoch & 0xFF])
    return prefix + _LEN.pack(GET_MARKER) + keyhash


def encode_put(keyhash: bytes, value: bytes, epoch: Optional[int] = None) -> bytes:
    """The trailing bytes a client WRITEs for a PUT."""
    _check_keyhash(keyhash)
    if len(value) > GET_MARKER - 1:
        raise ValueError("value too large for the LEN field")
    prefix = b"" if epoch is None else bytes([epoch & 0xFF])
    return value + prefix + _LEN.pack(len(value)) + keyhash


def request_write_offset(slot_bytes: int, payload: bytes) -> int:
    """Offset inside the slot where the trailing payload begins."""
    return slot_bytes - len(payload)


def decode_request(slot: bytes, with_epoch: bool = False):
    """Decode a request slot; None if the slot is free (zero keyhash).

    With ``with_epoch`` (loss mode) returns ``(operation, epoch)``; the
    epoch byte sits just before LEN (see :func:`encode_get`).
    """
    keyhash = slot[-KEYHASH_BYTES:]
    if keyhash == b"\x00" * KEYHASH_BYTES:
        return (None, 0) if with_epoch else None
    (length,) = _LEN.unpack(slot[-TRAILER_BYTES:-KEYHASH_BYTES])
    body_end = len(slot) - TRAILER_BYTES
    epoch = 0
    if with_epoch:
        epoch = slot[body_end - 1]
        body_end -= 1
    if length == GET_MARKER:
        op = Operation(OpType.GET, keyhash, None)
    else:
        start = body_end - length
        if start < 0:
            raise ValueError("corrupt request: LEN overruns the slot")
        op = Operation(OpType.PUT, keyhash, slot[start:body_end])
    return (op, epoch) if with_epoch else op


def encode_response(op: OpType, value: Optional[bytes]) -> bytes:
    """The SEND payload for a completed request."""
    if op is OpType.GET:
        return value if value is not None else b""
    return PUT_OK


def decode_response(op: OpType, payload: bytes) -> Tuple[bool, Optional[bytes]]:
    """Client-side decode: (success, value)."""
    if op is OpType.GET:
        if payload:
            return True, payload
        return False, None  # miss
    return payload == PUT_OK, None


def _check_keyhash(keyhash: bytes) -> None:
    if len(keyhash) != KEYHASH_BYTES:
        raise ValueError("keyhash must be exactly 16 bytes")
    if keyhash == b"\x00" * KEYHASH_BYTES:
        raise ValueError("the zero keyhash is reserved for free slots")
