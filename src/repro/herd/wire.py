"""HERD's request and response formats (Section 4.2).

A request slot is 1 KB.  The RNIC's DMA writes are left-to-right, so
the 16-byte keyhash sits in the *rightmost* bytes of the slot: when the
polling server sees a non-zero keyhash, the rest of the request is
already in place.  A zero keyhash marks a free slot, which is why
clients may never use one.

Slot layout (offsets relative to the slot end)::

    [ ... unused ... | value (LEN bytes) | LEN: u16 | keyhash: 16 bytes ]

A GET carries only LEN = GET_MARKER plus the keyhash (18 bytes on the
wire); a PUT carries its value, LEN, and the keyhash.  The client
WRITEs only the trailing portion of the slot.

Responses need no header: a GET hit returns the raw value, a GET miss
returns an empty message, and a PUT acknowledgement is one status byte
(the client remembers which operation each pending token was).
Keeping a 60-byte value's response WQE within two write-combining
cachelines is what lets HERD sustain peak throughput through 60-byte
items (Figure 10).
"""

from __future__ import annotations

import struct
from typing import Optional, Tuple

from repro.workloads.ycsb import Operation, OpType

KEYHASH_BYTES = 16
LEN_BYTES = 2
TRAILER_BYTES = LEN_BYTES + KEYHASH_BYTES

#: LEN value that marks a GET request (values are at most 1000 bytes,
#: so this cannot collide with a real length)
GET_MARKER = 0xFFFF

_LEN = struct.Struct("<H")

PUT_OK = b"\x01"


def encode_get(keyhash: bytes, epoch: Optional[int] = None) -> bytes:
    """The trailing bytes a client WRITEs for a GET.

    In loss mode (application retries enabled) the request carries a
    one-byte slot *epoch* just before LEN: the client bumps it on every
    reuse of a window slot and the server echoes it in the response, so
    a delayed duplicate response can never be matched to a newer
    operation that happens to reuse the same slot.
    """
    _check_keyhash(keyhash)
    prefix = b"" if epoch is None else bytes([epoch & 0xFF])
    return prefix + _LEN.pack(GET_MARKER) + keyhash


def encode_put(keyhash: bytes, value: bytes, epoch: Optional[int] = None) -> bytes:
    """The trailing bytes a client WRITEs for a PUT."""
    _check_keyhash(keyhash)
    if len(value) > GET_MARKER - 1:
        raise ValueError("value too large for the LEN field")
    prefix = b"" if epoch is None else bytes([epoch & 0xFF])
    return value + prefix + _LEN.pack(len(value)) + keyhash


def request_write_offset(slot_bytes: int, payload: bytes) -> int:
    """Offset inside the slot where the trailing payload begins."""
    return slot_bytes - len(payload)


def decode_request(slot: bytes, with_epoch: bool = False):
    """Decode a request slot; None if the slot is free (zero keyhash).

    With ``with_epoch`` (loss mode) returns ``(operation, epoch)``; the
    epoch byte sits just before LEN (see :func:`encode_get`).
    """
    keyhash = slot[-KEYHASH_BYTES:]
    if keyhash == b"\x00" * KEYHASH_BYTES:
        return (None, 0) if with_epoch else None
    (length,) = _LEN.unpack(slot[-TRAILER_BYTES:-KEYHASH_BYTES])
    body_end = len(slot) - TRAILER_BYTES
    epoch = 0
    if with_epoch:
        epoch = slot[body_end - 1]
        body_end -= 1
    if length == GET_MARKER:
        op = Operation(OpType.GET, keyhash, None)
    else:
        start = body_end - length
        if start < 0:
            raise ValueError("corrupt request: LEN overruns the slot")
        op = Operation(OpType.PUT, keyhash, slot[start:body_end])
    return (op, epoch) if with_epoch else op


def encode_response(op: OpType, value: Optional[bytes]) -> bytes:
    """The SEND payload for a completed request."""
    if op is OpType.GET:
        return value if value is not None else b""
    return PUT_OK


def decode_response(op: OpType, payload: bytes) -> Tuple[bool, Optional[bytes]]:
    """Client-side decode: (success, value)."""
    if op is OpType.GET:
        if payload:
            return True, payload
        return False, None  # miss
    return payload == PUT_OK, None


def _check_keyhash(keyhash: bytes) -> None:
    if len(keyhash) != KEYHASH_BYTES:
        raise ValueError("keyhash must be exactly 16 bytes")
    if keyhash == b"\x00" * KEYHASH_BYTES:
        raise ValueError("the zero keyhash is reserved for free slots")


# ---------------------------------------------------------------------------
# High-availability extensions (repro.ha)
# ---------------------------------------------------------------------------
#
# With replication enabled the response prefix grows a *status* byte:
# ``[window_slot, request_epoch, status, body...]``.  A status byte —
# rather than an in-band magic body — keeps GET values fully opaque (a
# value may legitimately contain any bytes, so no body marker is safe).

#: response served normally; the body follows the classic encoding
RESP_OK = 0
#: the replica is no longer the partition's primary (its fencing epoch
#: is stale); the client must re-resolve the primary and replay
RESP_STALE_EPOCH = 2
#: the partition no longer owns this key's range (the shard map moved
#: under an elastic resharding); the client must re-fetch the map and
#: re-route the operation — the elastic sibling of RESP_STALE_EPOCH
RESP_NOT_OWNER = 3
#: the partition shed this request under overload (repro.qos admission
#: control); the client must back off — budgeted, exponential — before
#: re-sending, instead of hammering a saturated partition
RESP_RETRY_AFTER = 4

#: replication / control message kinds (first byte of every message)
REP_UPDATE = 1         # primary -> backup: one sequenced PUT record
REP_ACK = 2            # backup -> primary: record applied (or stale nack)
REP_CATCHUP = 3        # backup -> primary: replay your log above my hwm
CTRL_HEARTBEAT = 4     # replica -> monitor, over UD
CTRL_GRANT = 5         # monitor -> primary: lease extension
CTRL_CONFIG = 6        # monitor -> replicas: epoch/primary/membership
CTRL_MIG_START = 7     # coordinator -> source primary: begin a migration
CTRL_MIG_CUTOVER = 8   # coordinator -> source primary: freeze and flush
CTRL_MIG_ABORT = 9     # coordinator -> either side: drop the migration
CTRL_MIG_EVENT = 10    # source primary -> coordinator: synced / flushed
CTRL_SHARDMAP = 11     # coordinator -> everyone: new shard-map version
MIG_RECORD = 12        # source -> destination, over the RC mesh
MIG_ACK = 13           # destination -> source: record committed

#: REP_ACK statuses
ACK_APPLIED = 0
ACK_STALE = 1

# kind, partition, sender, epoch, seq, vlen, client, window_slot,
# req_epoch: the trailing three are the originating request's token, so
# a replica can recognise a client's retry of an already-applied PUT
# even after a failover (exactly-once apply)
_UPDATE_HDR = struct.Struct("<BBBIQHHBB")
_ACK_MSG = struct.Struct("<BBBIQBQ")     # kind, partition, sender, epoch, seq, status, hwm
_CATCHUP_MSG = struct.Struct("<BBBIQ")   # kind, partition, sender, epoch, from_seq
_HB_MSG = struct.Struct("<BBBBIQd")      # kind, partition, sender, primary?, epoch, hwm, sent_ns
_GRANT_MSG = struct.Struct("<BBBId")     # kind, partition, target, epoch, hb_sent_ns
_CONFIG_HDR = struct.Struct("<BBBIB")    # kind, partition, primary, epoch, n_members


def ha_kind(data: bytes) -> int:
    """The message-kind byte of an HA replication/control message."""
    return data[0]


def encode_update(
    partition: int,
    sender: int,
    epoch: int,
    seq: int,
    keyhash: bytes,
    value: bytes,
    client: int = 0,
    window_slot: int = 0,
    req_epoch: int = 0,
) -> bytes:
    """One sequenced PUT record shipped primary -> backup over RC."""
    _check_keyhash(keyhash)
    return (
        _UPDATE_HDR.pack(
            REP_UPDATE, partition, sender, epoch, seq, len(value),
            client, window_slot, req_epoch,
        )
        + keyhash
        + value
    )


def decode_update(data: bytes):
    """(partition, sender, epoch, seq, keyhash, value, client,
    window_slot, req_epoch)."""
    (
        kind, partition, sender, epoch, seq, vlen,
        client, window_slot, req_epoch,
    ) = _UPDATE_HDR.unpack_from(data)
    assert kind == REP_UPDATE
    start = _UPDATE_HDR.size
    keyhash = data[start:start + KEYHASH_BYTES]
    value = data[start + KEYHASH_BYTES:start + KEYHASH_BYTES + vlen]
    return partition, sender, epoch, seq, keyhash, value, client, window_slot, req_epoch


def encode_rep_ack(
    partition: int, sender: int, epoch: int, seq: int, status: int, hwm: int
) -> bytes:
    return _ACK_MSG.pack(REP_ACK, partition, sender, epoch, seq, status, hwm)


def decode_rep_ack(data: bytes):
    """(partition, sender, epoch, seq, status, hwm)."""
    return _ACK_MSG.unpack(data)[1:]


def encode_catchup(partition: int, sender: int, epoch: int, from_seq: int) -> bytes:
    return _CATCHUP_MSG.pack(REP_CATCHUP, partition, sender, epoch, from_seq)


def decode_catchup(data: bytes):
    """(partition, sender, epoch, from_seq)."""
    return _CATCHUP_MSG.unpack(data)[1:]


def encode_heartbeat(
    partition: int, sender: int, is_primary: bool, epoch: int, hwm: int, sent_ns: float
) -> bytes:
    return _HB_MSG.pack(
        CTRL_HEARTBEAT, partition, sender, 1 if is_primary else 0, epoch, hwm, sent_ns
    )


def decode_heartbeat(data: bytes):
    """(partition, sender, is_primary, epoch, hwm, sent_ns)."""
    _, partition, sender, primary, epoch, hwm, sent_ns = _HB_MSG.unpack(data)
    return partition, sender, bool(primary), epoch, hwm, sent_ns


def encode_grant(partition: int, target: int, epoch: int, hb_sent_ns: float) -> bytes:
    return _GRANT_MSG.pack(CTRL_GRANT, partition, target, epoch, hb_sent_ns)


def decode_grant(data: bytes):
    """(partition, target, epoch, hb_sent_ns)."""
    return _GRANT_MSG.unpack(data)[1:]


def encode_config(
    partition: int, primary: int, epoch: int, members
) -> bytes:
    members = sorted(members)
    return _CONFIG_HDR.pack(
        CTRL_CONFIG, partition, primary, epoch, len(members)
    ) + bytes(members)


def decode_config(data: bytes):
    """(partition, primary, epoch, members-tuple)."""
    _, partition, primary, epoch, n = _CONFIG_HDR.unpack_from(data)
    members = tuple(data[_CONFIG_HDR.size:_CONFIG_HDR.size + n])
    return partition, primary, epoch, members


# ---------------------------------------------------------------------------
# Elastic resharding (repro.elastic)
# ---------------------------------------------------------------------------
#
# Ranges cover the 64-bit hash space as [lo, hi); the exclusive bound
# of the last range is 2**64, which does not fit in a u64, so on the
# wire hi == 0 means "the end of the hash space" (lo < hi always holds
# for a real range, so 0 is free to repurpose).

#: CTRL_MIG_EVENT codes, source primary -> coordinator
MIG_SYNCED = 0    # snapshot shipped and every shipped record acked
MIG_FLUSHED = 1   # frozen: no in-range write remains uncommitted/unacked

#: sentinel "client id" carried by migrated-in records through the
#: replication stream — real clients are always numbered below this,
#: so replicas can tell a migration record from a client request (and
#: skip the at-most-once completed-table bookkeeping for it)
MIG_CLIENT = 0xFFFF

# kind, mig_id, src_partition, dst_partition, dst_replica, lo, hi
_MIG_START_MSG = struct.Struct("<BIBBBQQ")
_MIG_EVENT_MSG = struct.Struct("<BIBB")   # kind, mig_id, partition, event
_MIG_CTL_MSG = struct.Struct("<BI")       # kind (cutover/abort), mig_id
# kind, mig_id, mseq, dst_partition, vlen — then keyhash + value
_MIG_RECORD_HDR = struct.Struct("<BIQBH")
_MIG_ACK_MSG = struct.Struct("<BIQ")      # kind, mig_id, mseq
_SHARDMAP_HDR = struct.Struct("<BIB")     # kind, version, n_entries
_SHARDMAP_ENTRY = struct.Struct("<QB")    # range start, owner partition

_U64_END = 1 << 64


def _wire_hi(hi: int) -> int:
    return 0 if hi >= _U64_END else hi


def _unwire_hi(hi: int) -> int:
    return _U64_END if hi == 0 else hi


def encode_mig_start(
    mig_id: int, src_partition: int, dst_partition: int,
    dst_replica: int, lo: int, hi: int,
) -> bytes:
    return _MIG_START_MSG.pack(
        CTRL_MIG_START, mig_id, src_partition, dst_partition,
        dst_replica, lo, _wire_hi(hi),
    )


def decode_mig_start(data: bytes):
    """(mig_id, src_partition, dst_partition, dst_replica, lo, hi)."""
    _, mig_id, src, dst, dst_replica, lo, hi = _MIG_START_MSG.unpack(data)
    return mig_id, src, dst, dst_replica, lo, _unwire_hi(hi)


def encode_mig_event(mig_id: int, partition: int, event: int) -> bytes:
    return _MIG_EVENT_MSG.pack(CTRL_MIG_EVENT, mig_id, partition, event)


def decode_mig_event(data: bytes):
    """(mig_id, partition, event)."""
    return _MIG_EVENT_MSG.unpack(data)[1:]


def encode_mig_cutover(mig_id: int) -> bytes:
    return _MIG_CTL_MSG.pack(CTRL_MIG_CUTOVER, mig_id)


def encode_mig_abort(mig_id: int) -> bytes:
    return _MIG_CTL_MSG.pack(CTRL_MIG_ABORT, mig_id)


def decode_mig_ctl(data: bytes) -> int:
    """The mig_id of a cutover or abort message."""
    return _MIG_CTL_MSG.unpack(data)[1]


def encode_mig_record(
    mig_id: int, mseq: int, dst_partition: int, keyhash: bytes, value: bytes
) -> bytes:
    """One migrated record, source -> destination over the RC mesh."""
    _check_keyhash(keyhash)
    return (
        _MIG_RECORD_HDR.pack(MIG_RECORD, mig_id, mseq, dst_partition, len(value))
        + keyhash
        + value
    )


def decode_mig_record(data: bytes):
    """(mig_id, mseq, dst_partition, keyhash, value)."""
    _, mig_id, mseq, dst_partition, vlen = _MIG_RECORD_HDR.unpack_from(data)
    start = _MIG_RECORD_HDR.size
    keyhash = data[start:start + KEYHASH_BYTES]
    value = data[start + KEYHASH_BYTES:start + KEYHASH_BYTES + vlen]
    return mig_id, mseq, dst_partition, keyhash, value


def encode_mig_ack(mig_id: int, mseq: int) -> bytes:
    return _MIG_ACK_MSG.pack(MIG_ACK, mig_id, mseq)


def decode_mig_ack(data: bytes):
    """(mig_id, mseq)."""
    return _MIG_ACK_MSG.unpack(data)[1:]


def encode_shard_map(version: int, entries) -> bytes:
    """``entries`` is the sorted boundary list ``[(start, owner), ...]``."""
    out = [_SHARDMAP_HDR.pack(CTRL_SHARDMAP, version, len(entries))]
    for start, owner in entries:
        out.append(_SHARDMAP_ENTRY.pack(start, owner))
    return b"".join(out)


def decode_shard_map(data: bytes):
    """(version, ((start, owner), ...))."""
    _, version, n = _SHARDMAP_HDR.unpack_from(data)
    entries = []
    offset = _SHARDMAP_HDR.size
    for _i in range(n):
        start, owner = _SHARDMAP_ENTRY.unpack_from(data, offset)
        entries.append((start, owner))
        offset += _SHARDMAP_ENTRY.size
    return version, tuple(entries)
