"""The SEND/SEND HERD variant (Section 5.5).

HERD's WRITE-based request path requires the server to poll one request
region slot set per client, and each connected UC QP holds responder
state in the NIC. Past a few hundred clients both start to hurt.  The
paper's proposed fix: switch requests to SENDs over Unreliable
Datagram.  UD QPs are unconnected, so the *entire* client population
shares NS server-side QPs — the design "should scale up to many
thousands of clients, while still outperforming an RDMA READ-based
architecture", at a measured cost of 4-5 Mops next to the WRITE/SEND
hybrid (Figure 5).

This module implements that variant end to end against the same MICA
backend: clients SEND requests (keyhash + optional value) to the UD QP
of the owning server process; the server pre-posts RECV rings, executes
the operation, and responds with the usual unsignaled UD SEND.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generator, List, Optional, Tuple

from repro.bench.result import RunResult, collect
from repro.hw import APT, Fabric, HardwareProfile, Machine
from repro.kv.mica import MicaCache
from repro.sim import Event, LatencyRecorder, RateMeter, Simulator
from repro.verbs import (
    CompletionQueue,
    QueuePair,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)
from repro.workloads.ycsb import Operation, OpType, Workload, WorkloadStream
from repro.herd.config import HerdConfig, partition_of
from repro.herd.wire import (
    GET_MARKER,
    decode_response,
    encode_response,
)

_RECV_SLOT = 40 + 1024 + 32
_GRH = 40

#: request message: 16-byte keyhash | u16 LEN (GET_MARKER for GETs) |
#: u32 reply qpn | value...  (the client's machine comes from the GRH)
_HEADER_BYTES = 16 + 2 + 4


def encode_ud_request(op: Operation, reply_qpn: int) -> bytes:
    length = GET_MARKER if op.op is OpType.GET else len(op.value)
    header = op.key + length.to_bytes(2, "little") + reply_qpn.to_bytes(4, "little")
    if op.op is OpType.GET:
        return header
    return header + op.value


def decode_ud_request(data: bytes) -> Tuple[Operation, int]:
    key = data[:16]
    length = int.from_bytes(data[16:18], "little")
    reply_qpn = int.from_bytes(data[18:22], "little")
    if length == GET_MARKER:
        return Operation(OpType.GET, key, None), reply_qpn
    return Operation(OpType.PUT, key, data[22 : 22 + length]), reply_qpn


class _UdServerProcess:
    """A server core: one UD QP serves requests from *all* clients."""

    RECV_RING = 512

    def __init__(self, index: int, device: RdmaDevice, config: HerdConfig) -> None:
        self.index = index
        self.device = device
        self.sim: Simulator = device.sim
        self.profile = device.profile
        self.config = config
        self.recv_cq = CompletionQueue(self.sim, "uds%d.rcq" % index)
        self.qp: QueuePair = device.create_qp(Transport.UD, recv_cq=self.recv_cq)
        self.recv_mr = device.register_memory(self.RECV_RING * _RECV_SLOT)
        for slot in range(self.RECV_RING):
            device.post_recv(
                self.qp,
                RecvRequest(wr_id=slot, local=(self.recv_mr, slot * _RECV_SLOT, _RECV_SLOT)),
            )
        self.store = MicaCache(config.index_entries, config.log_bytes)
        self._staging = device.register_memory(1 << 16)
        self._staging_cursor = 0
        self._recvs_since_doorbell = 0
        self.gets = 0
        self.puts = 0
        self.responses = 0

    def start(self) -> None:
        self.sim.process(self.run(), name="herd-ud-server-%d" % self.index)

    def run(self) -> Generator[Event, None, None]:
        p = self.profile
        while True:
            cqe = yield self.recv_cq.pop()
            yield self.sim.timeout(p.cq_poll_ns)
            offset = cqe.wr_id * _RECV_SLOT
            data = self.recv_mr.read(offset + _GRH, cqe.byte_len)
            op, reply_qpn = decode_ud_request(data)
            # Repost the consumed RECV.  The deep RECV ring lets us ring
            # the doorbell only once per batch of 8 reposts — the
            # batched-RECV optimization that keeps the SEND/SEND
            # variant within a few Mops of the hybrid (Section 5.5).
            self.device.post_recv(
                self.qp,
                RecvRequest(wr_id=cqe.wr_id, local=(self.recv_mr, offset, _RECV_SLOT)),
            )
            yield self.sim.timeout(p.post_recv_ns)
            self._recvs_since_doorbell += 1
            if self._recvs_since_doorbell >= 8:
                self._recvs_since_doorbell = 0
                yield self.device.machine.pcie.doorbell()
            if op.op is OpType.GET:
                self.gets += 1
                value = self.store.get(op.key)
            else:
                self.puts += 1
                self.store.put(op.key, op.value)
                value = None
            per_access = (
                p.prefetch_hit_ns if self.config.prefetch else p.dram_ns
            )
            yield self.sim.timeout(self.store.last_op_accesses * per_access)
            payload = encode_response(op.op, value)
            ah = (cqe.src[0], reply_qpn)
            if len(payload) <= p.herd_inline_cutoff:
                wr = WorkRequest.send(payload=payload, inline=True, signaled=False, ah=ah)
            else:
                yield self.sim.timeout(len(payload) / 16.0)
                if self._staging_cursor + len(payload) > 1 << 16:
                    self._staging_cursor = 0
                staged = self._staging_cursor
                self._staging.write(staged, payload)
                self._staging_cursor += len(payload)
                wr = WorkRequest.send(
                    local=(self._staging, staged, len(payload)), signaled=False, ah=ah
                )
            yield from self.device.post_send_timed(self.qp, wr)
            self.responses += 1


@dataclass
class _Pending:
    op: Operation
    sent_at: float


class _UdClientProcess:
    """A closed-loop client using one UD QP for everything."""

    def __init__(
        self,
        client_id: int,
        device: RdmaDevice,
        config: HerdConfig,
        stream: WorkloadStream,
    ) -> None:
        self.client_id = client_id
        self.device = device
        self.sim = device.sim
        self.profile = device.profile
        self.config = config
        self.stream = stream
        self.qp = device.create_qp(Transport.UD)
        self.recv_mr = device.register_memory(2 * config.window * _RECV_SLOT)
        self._staging = device.register_memory(2 * config.window * 1024)
        #: filled by the cluster: per server process (machine, qpn)
        self.server_ahs: List[Tuple[str, int]] = []
        self._pending: List[Deque[_Pending]] = []
        self._seq = 0
        self.response_hook = None
        self.issued = 0
        self.completed = 0
        self.get_misses = 0
        self.failures = 0

    def start(self) -> None:
        self._pending = [deque() for _ in self.server_ahs]
        self.sim.process(self.run(), name="herd-ud-client-%d" % self.client_id)

    def run(self) -> Generator[Event, None, None]:
        for _ in range(self.config.window):
            yield from self._issue_next()
        while True:
            cqe = yield self.qp.recv_cq.pop()
            yield self.sim.timeout(self.profile.cq_poll_ns)
            self._absorb(cqe)
            yield from self._issue_next()

    def _issue_next(self) -> Generator[Event, None, None]:
        op = self.stream.next_op()
        server = partition_of(op.key, len(self.server_ahs))
        slot = self._seq % (2 * self.config.window)
        self._seq += 1
        yield from self.device.post_recv_timed(
            self.qp,
            RecvRequest(wr_id=server, local=(self.recv_mr, slot * _RECV_SLOT, _RECV_SLOT)),
        )
        payload = encode_ud_request(op, self.qp.qpn)
        if len(payload) <= self.profile.max_inline:
            wr = WorkRequest.send(
                payload=payload, inline=True, signaled=False, ah=self.server_ahs[server]
            )
        else:
            staged = slot * 1024
            self._staging.write(staged, payload)
            yield self.sim.timeout(len(payload) / 16.0)
            wr = WorkRequest.send(
                local=(self._staging, staged, len(payload)),
                signaled=False, ah=self.server_ahs[server],
            )
        yield from self.device.post_send_timed(self.qp, wr)
        self._pending[server].append(_Pending(op, self.sim.now))
        self.issued += 1

    def _absorb(self, cqe) -> None:
        # Responses arrive from the server process's UD QP; match FIFO
        # per server (each server process serves this client in order).
        server = next(
            s for s, (machine, qpn) in enumerate(self.server_ahs)
            if (machine, qpn) == cqe.src
        )
        record = self._pending[server].popleft()
        self.completed += 1
        success, _value = decode_response(record.op.op, self._read_response(cqe))
        if record.op.op is OpType.GET and not success:
            self.get_misses += 1
        elif not success:
            self.failures += 1
        if self.response_hook is not None:
            self.response_hook(record.op, self.sim.now - record.sent_at, success, self.sim.now)

    def _read_response(self, cqe) -> bytes:
        # RECVs are consumed in strict FIFO posting order regardless of
        # sender, and we post one per issue — so the k-th completion's
        # data sits in the buffer posted by the k-th issue.
        slot = (self.completed - 1) % (2 * self.config.window)
        return self.recv_mr.read(slot * _RECV_SLOT + _GRH, cqe.byte_len)


class SendSendHerdCluster:
    """HERD with SEND/SEND request-response over UD (Section 5.5)."""

    def __init__(
        self,
        config: Optional[HerdConfig] = None,
        profile: HardwareProfile = APT,
        n_client_machines: int = 17,
        seed: int = 0,
    ) -> None:
        self.config = config if config is not None else HerdConfig()
        self.sim = Simulator()
        self.fabric = Fabric(self.sim, profile)
        self.server_device = RdmaDevice(
            Machine(self.sim, self.fabric, "server", cache_seed=seed)
        )
        self.client_devices = [
            RdmaDevice(Machine(self.sim, self.fabric, "cm%d" % i, cache_seed=seed + i + 1))
            for i in range(n_client_machines)
        ]
        self.servers = [
            _UdServerProcess(s, self.server_device, self.config)
            for s in range(self.config.n_server_processes)
        ]
        self.clients: List[_UdClientProcess] = []
        self.seed = seed

    def add_clients(self, n: int, workload: Workload) -> None:
        ahs = [("server", s.qp.qpn) for s in self.servers]
        for i in range(n):
            cid = len(self.clients)
            device = self.client_devices[cid % len(self.client_devices)]
            stream = workload.stream(seed=self.seed * 1_000_003 + cid)
            client = _UdClientProcess(cid, device, self.config, stream)
            client.server_ahs = ahs
            self.clients.append(client)

    def preload(self, items: range, value_size: int) -> None:
        from repro.workloads.ycsb import keyhash, value_for

        for item in items:
            kh = keyhash(item)
            server = self.servers[partition_of(kh, len(self.servers))]
            server.store.put(kh, value_for(item, value_size))

    def run(self, warmup_ns: float = 50_000.0, measure_ns: float = 200_000.0) -> RunResult:
        window_end = warmup_ns + measure_ns
        meter = RateMeter(warmup_ns, window_end)
        latencies = LatencyRecorder(warmup_ns, window_end)
        for client in self.clients:
            def hook(op, latency, success, now, _m=meter, _l=latencies):
                _m.record(now)
                _l.record(now, latency)

            client.response_hook = hook
            client.start()
        for server in self.servers:
            server.start()
        self.sim.run(until=window_end)
        cache = self.server_device.machine.qp_cache
        return collect(
            meter,
            latencies,
            measure_ns,
            server_qp_cache_hit_rate=cache.hit_rate(),
            get_misses=float(sum(c.get_misses for c in self.clients)),
            rnr_drops=float(sum(s.qp.rnr_drops for s in self.servers)),
        )
