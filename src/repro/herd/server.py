"""A HERD server process: poll, execute, respond (Sections 4.1-4.3).

Each server process is pinned to one core, owns one MICA partition
(EREW — exclusive read and write), and uses exactly one UD queue pair
for every response it sends.  Its loop:

1. poll the per-client request chunks for a non-zero keyhash;
2. issue a prefetch for the new request's index bucket, advance the
   request pipeline, and push the new request in;
3. execute the pipeline's completed request against MICA (its memory
   accesses are cache-resident thanks to the prefetches);
4. ``post_send()`` the response as an *unsignaled* SEND over UD —
   new incoming requests double as completion notification for old
   responses — inlined when the value is small, from a staging buffer
   above the inline cutoff (144 B on Apt);
5. zero the slot's keyhash so the client can reuse it.
"""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Tuple

from repro.kv.mica import MicaCache
from repro.sim import Event, Simulator
from repro.verbs import QueuePair, RdmaDevice, Transport, WorkRequest
from repro.workloads.ycsb import Operation, OpType
from repro.herd.config import HerdConfig
from repro.herd.pipeline import RequestPipeline
from repro.herd.region import RequestRegion
from repro.herd.wire import (
    RESP_NOT_OWNER,
    RESP_OK,
    RESP_RETRY_AFTER,
    RESP_STALE_EPOCH,
    encode_response,
)

#: a request travelling through the pipeline:
#: (client, window slot, op, request epoch)
PipelineEntry = Tuple[int, int, Operation, int]

#: observer called as fn(client_id, op, now) when a response is posted
CompletionHook = Callable[[int, Operation, float], None]

#: staging buffer for non-inlined responses
_STAGING_BYTES = 1 << 16


class HerdServerProcess:
    """One polling server core."""

    def __init__(
        self,
        index: int,
        device: RdmaDevice,
        region: RequestRegion,
        config: HerdConfig,
        client_ahs: List[Tuple[str, int]],
    ) -> None:
        self.index = index
        self.device = device
        self.sim: Simulator = device.sim
        self.profile = device.profile
        self.region = region
        self.config = config
        #: response address handles, indexed by client id
        self.client_ahs = client_ahs
        self.ud_qp: QueuePair = device.create_qp(Transport.UD)
        self.store = MicaCache(config.index_entries, config.log_bytes)
        self.pipeline: RequestPipeline[PipelineEntry] = RequestPipeline(
            config.pipeline_depth
        )
        self._staging = device.register_memory(_STAGING_BYTES)
        self._staging_cursor = 0
        #: staging extents (start, end) whose responses the NIC has not
        #: yet DMA-read out of host memory — a wrapped cursor must not
        #: overwrite these (it would corrupt an in-flight response)
        self._staging_inflight: List[Tuple[int, int]] = []
        self.completion_hook: Optional[CompletionHook] = None
        #: replication role (repro.ha.ReplicaRole) when this process
        #: serves a replicated partition; None = classic HERD
        self.ha_role = None
        #: admission controller (repro.qos.PartitionAdmission) when the
        #: cluster runs with overload protection; None = admit everything
        self.admission = None
        #: QoS response framing: every response (and nack) carries the
        #: HA-style status byte so RESP_RETRY_AFTER has a place to live
        self._qos_framing = config.qos is not None
        #: liveness: False between :meth:`crash` and :meth:`recover`.
        #: The request region and the MICA partition live in shared
        #: memory (HERD maps both with ``shmget``), so only the
        #: process's volatile state — its pipeline and its position in
        #: the polling loop — dies with it.
        self.alive = True
        #: bumped by :meth:`crash`; a stale polling loop notices its
        #: epoch is old at the next yield boundary and exits
        self.epoch = 0
        self._waiting_get = None
        # counters
        self.gets = 0
        self.puts = 0
        self.get_hits = 0
        self.responses = 0
        self.noops_pushed = 0
        self.crashes = 0
        self.recoveries = 0
        self.recovered_slots = 0
        self.shed = 0
        # Observability (repro.obs)
        metrics = getattr(self.sim, "metrics", None)
        self._occupancy = None
        if metrics is not None:
            prefix = "herd.server%d." % index
            metrics.gauge_fn(prefix + "gets", lambda: self.gets)
            metrics.gauge_fn(prefix + "puts", lambda: self.puts)
            metrics.gauge_fn(prefix + "get_hits", lambda: self.get_hits)
            metrics.gauge_fn(prefix + "responses", lambda: self.responses)
            metrics.gauge_fn(prefix + "noops", lambda: self.noops_pushed)
            metrics.gauge_fn(prefix + "crashes", lambda: self.crashes)
            metrics.gauge_fn(prefix + "recoveries", lambda: self.recoveries)
            metrics.gauge_fn(prefix + "recovered_slots", lambda: self.recovered_slots)
            metrics.gauge_fn(prefix + "shed", lambda: self.shed)
            self._occupancy = metrics.histogram(prefix + "pipeline_occupancy")

    # ------------------------------------------------------------------

    def start(self) -> None:
        self.sim.process(self.run(self.epoch), name="herd-server-%d" % self.index)

    # -- crash / recovery ----------------------------------------------

    def crash(self) -> bool:
        """Kill the server process (returns False if already dead).

        The polling loop's generator is abandoned: its blocked arrival
        getter is withdrawn (so queued notifications are not handed to
        a corpse), and any resumption from a pending timeout sees the
        bumped epoch and exits.  A request caught mid-execution may
        still get its response out — exactly the ambiguity a real crash
        leaves, and why recovery re-scans the region rather than trust
        any process-local record.
        """
        if not self.alive:
            return False
        self.alive = False
        self.epoch += 1
        self.crashes += 1
        if self._waiting_get is not None:
            self.region.arrivals[self.index].cancel(self._waiting_get)
            self._waiting_get = None
        if self.ha_role is not None:
            self.ha_role.on_crash()
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.mark("herd-server-%d" % self.index, "crash")
        return True

    def recover(self) -> bool:
        """Restart a crashed server process (False if it is alive).

        The new process re-attaches the shared request region and MICA
        partition, discards stale arrival notifications, and re-scans
        its region chunk: every slot whose keyhash is still non-zero is
        an unanswered request — written before the crash or while the
        process was down (RDMA WRITEs land without the CPU) — and is
        re-queued for service.  Re-execution is safe: GETs are
        read-only and HERD PUTs are idempotent, and the client dedups
        the rare duplicate response by window slot.
        """
        if self.alive:
            return False
        self.alive = True
        self.epoch += 1
        self.recoveries += 1
        self.pipeline = RequestPipeline(self.config.pipeline_depth)
        arrivals = self.region.arrivals[self.index]
        arrivals.clear()  # superseded by the scan below
        live = self.region.scan_partition(self.index)
        self.recovered_slots += len(live)
        for item in live:
            arrivals.put(item)
        # Charge one full polling pass for the scan itself.
        scan_ns = self.region.n_clients * self.config.window * self.profile.poll_check_ns
        if self.ha_role is not None:
            self.ha_role.on_recover()
        self.sim.process(
            self.run(self.epoch, warmup_ns=scan_ns),
            name="herd-server-%d.e%d" % (self.index, self.epoch),
        )
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.mark(
                "herd-server-%d" % self.index,
                "recovered (%d live slots)" % len(live),
            )
        return True

    def run(self, epoch: int, warmup_ns: float = 0.0) -> Generator[Event, None, None]:
        """The polling loop (for one process incarnation)."""
        sim = self.sim
        p = self.profile
        cfg = self.config
        arrivals = self.region.arrivals[self.index]
        flush_spin_ns = cfg.noop_after_polls * p.poll_check_ns
        if warmup_ns:
            yield sim.timeout(warmup_ns)
        while self.epoch == epoch:
            item = arrivals.try_get()
            if item is None and self.pipeline:
                # Requests are stuck in the pipeline: spin for the
                # paper's 100 poll iterations, then push a no-op.
                yield sim.timeout(flush_spin_ns)
                if self.epoch != epoch:
                    return
                item = arrivals.try_get()
                if item is None:
                    self.noops_pushed += 1
                    yield from self._complete(self.pipeline.push(None), epoch)
                    continue
            if item is None:
                # Fully idle: block until a request lands, then charge
                # the round-robin detection delay (half a polling pass).
                event = arrivals.get()
                self._waiting_get = event
                item = yield event
                self._waiting_get = None
                if self.epoch != epoch:
                    return  # crashed while blocked; slot survives in shm
                yield sim.timeout(self._detect_delay_ns())
                if self.epoch != epoch:
                    return
            yield from self._serve(item, epoch)

    def _detect_delay_ns(self) -> float:
        slots = self.region.n_clients * self.config.window
        return slots * self.profile.poll_check_ns / 2.0

    # ------------------------------------------------------------------

    def _serve(
        self, item: Tuple[int, int], epoch: int
    ) -> Generator[Event, None, None]:
        sim = self.sim
        p = self.profile
        # QoS-stamped arrivals are (client, window_slot, arrived_ns)
        # 3-tuples; recovery re-scan items stay 2-tuples (sojourn 0).
        client, window_slot = item[0], item[1]
        # Cost of the poll iteration that found the slot + decode.
        yield sim.timeout(4 * p.poll_check_ns)
        if self.epoch != epoch:
            return  # crashed mid-poll; the slot survives for the re-scan
        if self.config.retry_timeout_ns is not None:
            op, req_epoch = self.region.read_slot(
                self.index, client, window_slot, with_epoch=True
            )
        else:
            op = self.region.read_slot(self.index, client, window_slot)
            req_epoch = 0
        if op is None:
            return  # spurious wakeup: slot already consumed
        if self.admission is not None:
            arrived = item[2] if len(item) > 2 else sim.now
            backlog = len(self.region.arrivals[self.index]) + len(self.pipeline)
            verdict = self.admission.on_request(
                client, sim.now, sim.now - arrived, backlog
            )
            if verdict is not None:
                yield from self._shed(client, window_slot, req_epoch, epoch)
                return
        if self.config.prefetch:
            # Issue the prefetch for this request's index bucket; it
            # completes while we respond to the pipeline's oldest entry.
            yield sim.timeout(1.0)
            if self.epoch != epoch:
                return
        completed = self.pipeline.push((client, window_slot, op, req_epoch))
        if self._occupancy is not None:
            self._occupancy.observe(len(self.pipeline))
        yield from self._complete(completed, epoch)

    def _complete(
        self, entry: Optional[PipelineEntry], epoch: int
    ) -> Generator[Event, None, None]:
        if entry is None:
            return
        if self.ha_role is not None:
            yield from self._complete_ha(entry, epoch)
            return
        sim = self.sim
        p = self.profile
        client, window_slot, op, req_epoch = entry
        # Execute against the MICA partition (real bytes), charging the
        # memory time: prefetched accesses are cache hits.
        if op.op is OpType.GET:
            self.gets += 1
            value = self.store.get(op.key)
            if value is not None:
                self.get_hits += 1
        else:
            self.puts += 1
            self.store.put(op.key, op.value)
            value = None
        per_access = p.prefetch_hit_ns if self.config.prefetch else p.dram_ns
        yield sim.timeout(self.store.last_op_accesses * per_access)
        if self.epoch != epoch:
            # Crashed after executing but before responding.  A PUT may
            # have landed in the store; re-execution after recovery is
            # idempotent, so the re-scan repairs this cleanly.
            return
        payload = encode_response(op.op, value)
        if self._qos_framing:
            # QoS mode borrows the HA status byte so shed nacks
            # (RESP_RETRY_AFTER) share the framing of real responses.
            payload = bytes([window_slot, req_epoch, RESP_OK]) + payload
        elif self.config.retry_timeout_ns is not None:
            # Loss mode: completions can be reordered by retries, so the
            # response identifies the window slot it answers, plus the
            # request's epoch byte — a delayed duplicate must not match
            # a newer op that reused the slot.
            payload = bytes([window_slot, req_epoch]) + payload
        yield from self._respond(client, payload, epoch)
        if self.epoch != epoch:
            # Crashed while the response was being staged or posted: the
            # SEND never went out, so the slot must survive for the
            # post-recovery re-scan — a corpse must not finish the op.
            return
        self.region.clear_slot(self.index, client, window_slot)
        self.responses += 1
        if self.completion_hook is not None:
            self.completion_hook(client, op, sim.now)

    # -- overload shedding (repro.qos) ---------------------------------

    def _shed(
        self, client: int, window_slot: int, req_epoch: int, epoch: int
    ) -> Generator[Event, None, None]:
        """Shed one admitted-region request under overload.

        ``nack`` policy answers with a prefix-only RESP_RETRY_AFTER so
        the client backs off deliberately; ``drop`` sheds silently and
        lets the client's retry timeout discover the loss.  Either way
        the slot is cleared — the shed request is gone, and the
        client's re-send lands as a fresh arrival.  Sheds are *not*
        responses: they bypass ``completion_hook`` and the response
        counter, so goodput accounting only sees served work.
        """
        self.shed += 1
        if self.config.qos.drop_policy == "nack":
            payload = bytes([window_slot, req_epoch, RESP_RETRY_AFTER])
            yield from self._respond(client, payload, epoch)
            if self.epoch != epoch:
                return
        self.region.clear_slot(self.index, client, window_slot)

    # -- replicated-partition serve path (repro.ha) --------------------

    def _complete_ha(
        self, entry: PipelineEntry, epoch: int
    ) -> Generator[Event, None, None]:
        """Serve one request under a replication role.

        GETs read committed state (parking behind an uncommitted PUT on
        the same key); PUTs are sequenced and shipped to the backups,
        acked later at commit.  A replica that is not the serving
        primary nacks with STALE_EPOCH so the client fails over; a
        primary without a current lease (or still syncing after
        promotion) holds the request until its verdict resolves.
        """
        sim = self.sim
        p = self.profile
        role = self.ha_role
        client, window_slot, op, req_epoch = entry
        verdict = role.serving_verdict(sim.now)
        while verdict == "hold":
            yield sim.timeout(role.hold_retry_ns)
            if self.epoch != epoch:
                return
            verdict = role.serving_verdict(sim.now)
        if verdict == "stale":
            yield from self.ha_respond(
                client, window_slot, op, req_epoch, RESP_STALE_EPOCH, epoch
            )
            return
        if op.op is not OpType.GET:
            # PUT dedup runs *before* the ownership verdict: a retry of
            # a PUT this group already applied must be re-acked here —
            # even if the range has since migrated away — because the
            # ack answers the original committed execution.  Nacking it
            # NOT_OWNER would re-execute the write at the new owner: a
            # second linearization point for a write other clients may
            # already have observed interleaved with newer values.
            if (client, window_slot, req_epoch) in role.pending_client:
                return  # a retry of a PUT already replicating; ack at commit
            if role.completed.get((client, window_slot)) == req_epoch:
                yield from self.ha_respond(
                    client, window_slot, op, req_epoch, RESP_OK, epoch,
                    ack_epoch=role.epoch,
                )
                return
        everdict = role.elastic_verdict(op.key)
        while everdict == "hold":
            # the key's range is frozen for a migration cutover: hold
            # until the map moves (-> not_owner) or the move aborts
            yield sim.timeout(role.hold_retry_ns)
            if self.epoch != epoch:
                return
            if role.serving_verdict(sim.now) == "stale":
                yield from self.ha_respond(
                    client, window_slot, op, req_epoch, RESP_STALE_EPOCH, epoch
                )
                return
            everdict = role.elastic_verdict(op.key)
        if everdict == "not_owner":
            yield from self.ha_respond(
                client, window_slot, op, req_epoch, RESP_NOT_OWNER, epoch
            )
            return
        if op.op is OpType.GET:
            if op.key in role.uncommitted:
                # an uncommitted PUT to this key is in flight: serving
                # the old value now and the ack later could expose a
                # non-linearizable read; park until the commit
                role.defer_get(client, window_slot, req_epoch, op)
                return
            self.gets += 1
            value = self.store.get(op.key)
            if value is not None:
                self.get_hits += 1
            per_access = p.prefetch_hit_ns if self.config.prefetch else p.dram_ns
            yield sim.timeout(self.store.last_op_accesses * per_access)
            if self.epoch != epoch:
                return
            yield from self.ha_respond(
                client, window_slot, op, req_epoch, RESP_OK, epoch, value=value
            )
            return
        self.puts += 1
        yield from role.stage_update(client, window_slot, req_epoch, op)

    def ha_respond(
        self,
        client: int,
        window_slot: int,
        op: Operation,
        req_epoch: int,
        status: int,
        epoch: int,
        value: Optional[bytes] = None,
        extra_ns: float = 0.0,
        ack_epoch: Optional[int] = None,
    ) -> Generator[Event, None, None]:
        """Post an HA response ``[slot, req_epoch, status, body...]``.

        Runs either inline on the server core or as a spawned process
        (commit-time acks arrive from the replication node); both paths
        are fenced by the process epoch so a crashed incarnation cannot
        answer.
        """
        sim = self.sim
        if self.epoch != epoch or not self.alive:
            return
        if extra_ns:
            yield sim.timeout(extra_ns)
            if self.epoch != epoch:
                return
        body = encode_response(op.op, value) if status == RESP_OK else b""
        payload = bytes([window_slot, req_epoch, status]) + body
        yield from self._respond(client, payload, epoch)
        if self.epoch != epoch:
            return
        self.region.clear_slot(self.index, client, window_slot)
        self.responses += 1
        role = self.ha_role
        if role is not None and status == RESP_OK:
            role.group.record_ack(
                role.epoch if ack_epoch is None else ack_epoch, role.replica_id
            )
        if self.completion_hook is not None:
            self.completion_hook(client, op, sim.now)

    def ha_serve_deferred_get(
        self, client: int, window_slot: int, req_epoch: int, op: Operation, epoch: int
    ) -> Generator[Event, None, None]:
        """Answer a GET that waited for a PUT on its key to commit."""
        if self.epoch != epoch or not self.alive:
            return
        self.gets += 1
        value = self.store.get(op.key)
        if value is not None:
            self.get_hits += 1
        p = self.profile
        per_access = p.prefetch_hit_ns if self.config.prefetch else p.dram_ns
        yield self.sim.timeout(self.store.last_op_accesses * per_access)
        if self.epoch != epoch:
            return
        yield from self.ha_respond(
            client, window_slot, op, req_epoch, RESP_OK, epoch, value=value
        )

    def _respond(
        self, client: int, payload: bytes, epoch: Optional[int] = None
    ) -> Generator[Event, None, None]:
        """SEND the response over UD, inlined below the cutoff.

        With ``epoch`` given, the send is fenced: a process that
        crashed mid-respond stops before anything reaches the NIC.
        """
        p = self.profile
        ah = self.client_ahs[client]
        if len(payload) <= p.herd_inline_cutoff:
            wr = WorkRequest.send(payload=payload, inline=True, signaled=False, ah=ah)
        else:
            # Large values go out un-inlined: DMA beats PIO for large
            # payloads (Figure 4b), so HERD switches at 144 B on Apt.
            yield self.sim.timeout(len(payload) / 16.0)  # staging memcpy
            if epoch is not None and self.epoch != epoch:
                return
            offset = self._stage(payload)
            wr = WorkRequest.send(
                local=(self._staging, offset, len(payload)), signaled=False, ah=ah
            )
            extent = (offset, offset + len(payload))
            wr.on_fetched = lambda: self._staging_inflight.remove(extent)
        yield self.sim.timeout(p.post_send_ns)
        if epoch is not None and self.epoch != epoch:
            return
        yield self.device.post_send(self.ud_qp, wr)

    def _stage(self, payload: bytes) -> int:
        """Copy a response into the staging MR; returns its offset.

        The cursor wraps like a ring buffer, but an extent is only
        handed out once it cannot overlap a response the NIC is still
        DMA-reading (sends are unsignaled, so the DMA-fetch callback —
        not a CQE — retires extents).
        """
        size = len(payload)
        if size > _STAGING_BYTES:
            raise ValueError(
                "response payload of %d B exceeds the %d B staging buffer; "
                "values this large cannot be sent un-inlined" % (size, _STAGING_BYTES)
            )
        start = self._staging_cursor
        if start + size > _STAGING_BYTES:
            start = 0
        for in_start, in_end in self._staging_inflight:
            if start < in_end and start + size > in_start:
                raise RuntimeError(
                    "staging buffer exhausted: extent [%d, %d) overlaps "
                    "in-flight response [%d, %d) (%d responses awaiting "
                    "DMA fetch)"
                    % (start, start + size, in_start, in_end, len(self._staging_inflight))
                )
        self._staging_inflight.append((start, start + size))
        self._staging.write(start, payload)
        self._staging_cursor = start + size
        return start
