"""The request region: HERD's shared, polled request memory (Section 4.2).

One contiguous registered region on the server machine, created by an
initializer process and mapped by every server process (the paper uses
``shmget``; here all server processes simply hold a reference).  It is
divided into per-server-process chunks, subdivided into per-client
chunks of W slots::

    slot(s, c, w)  at  (s * NC * W + c * W + w) * slot_bytes

Server process ``s``, having seen ``r`` requests from client ``c``,
polls slot ``s*(W*NC) + c*W + (r mod W)`` — the formula from the paper.

Polling is modelled with an arrival queue per server process: the
verbs layer notifies the region when a WRITE's DMA lands, and the
region routes the notification to the owning server process.  The
*detection latency* and *CPU cost* of polling are still charged by the
server loop; only the busy-wait spinning is elided from the event
calendar.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.sim import Simulator, Store
from repro.verbs import MemoryRegion, RdmaDevice
from repro.herd.config import HerdConfig
from repro.herd.wire import KEYHASH_BYTES, decode_request


class RequestRegion:
    """The server's request memory plus slot geometry."""

    def __init__(
        self,
        sim: Simulator,
        device: RdmaDevice,
        config: HerdConfig,
        n_clients: int,
    ) -> None:
        self.sim = sim
        self.config = config
        self.n_clients = n_clients
        self.mr: MemoryRegion = device.register_memory(config.region_bytes(n_clients))
        self.mr.on_write = self._on_write
        #: per-server-process arrival queues of (client, window slot)
        self.arrivals: List[Store] = [
            Store(sim, "region.arrivals.s%d" % s)
            for s in range(config.n_server_processes)
        ]
        self.requests_seen = 0
        #: QoS mode: stamp each arrival with its landing time so the
        #: server can compute queueing sojourn (CoDel's input).  Stamped
        #: arrivals are ``(client, window_slot, arrived_ns)`` 3-tuples —
        #: the stamp rides *in* the queued item because ``Store.put``
        #: hands items straight to a waiting getter, bypassing the queue
        self.stamp_arrivals = False

    # -- geometry ---------------------------------------------------------

    def slot_index(self, server: int, client: int, window_slot: int) -> int:
        cfg = self.config
        if not 0 <= server < cfg.n_server_processes:
            raise IndexError("server %d out of range" % server)
        if not 0 <= client < self.n_clients:
            raise IndexError("client %d out of range" % client)
        if not 0 <= window_slot < cfg.window:
            raise IndexError("window slot %d out of range" % window_slot)
        return server * (self.n_clients * cfg.window) + client * cfg.window + window_slot

    def slot_offset(self, server: int, client: int, window_slot: int) -> int:
        return self.slot_index(server, client, window_slot) * self.config.slot_bytes

    def slot_addr(self, server: int, client: int, window_slot: int) -> int:
        """The remote virtual address clients WRITE to."""
        return self.mr.addr + self.slot_offset(server, client, window_slot)

    def locate(self, offset: int) -> Tuple[int, int, int]:
        """Inverse of :meth:`slot_offset` for an arbitrary region offset."""
        index = offset // self.config.slot_bytes
        per_server = self.n_clients * self.config.window
        server, rest = divmod(index, per_server)
        client, window_slot = divmod(rest, self.config.window)
        return server, client, window_slot

    # -- server-side access -------------------------------------------------

    def read_slot(self, server: int, client: int, window_slot: int, with_epoch: bool = False):
        """Decode the request in a slot (None if free).

        ``with_epoch`` (loss mode) also returns the request's slot
        epoch byte: ``(operation, epoch)``."""
        offset = self.slot_offset(server, client, window_slot)
        return decode_request(
            self.mr.read(offset, self.config.slot_bytes), with_epoch=with_epoch
        )

    def clear_slot(self, server: int, client: int, window_slot: int) -> None:
        """Zero the keyhash, freeing the slot for the client's next
        request (the server does this after sending the response)."""
        offset = (
            self.slot_offset(server, client, window_slot)
            + self.config.slot_bytes
            - KEYHASH_BYTES
        )
        self.mr.write(offset, b"\x00" * KEYHASH_BYTES)

    def scan_partition(self, server: int) -> List[Tuple[int, int]]:
        """Slots in ``server``'s chunk still holding a live request.

        The request region is shared memory: it survives a server
        *process* crash.  A recovering process re-scans its chunk for
        non-zero keyhashes — the ground truth for what remains
        unanswered, since a slot's keyhash is only zeroed *after* its
        response was posted.  Requests written while the process was
        down are found the same way.
        """
        live: List[Tuple[int, int]] = []
        keyhash_at = self.config.slot_bytes - KEYHASH_BYTES
        for client in range(self.n_clients):
            for window_slot in range(self.config.window):
                offset = self.slot_offset(server, client, window_slot)
                if any(self.mr.read(offset + keyhash_at, KEYHASH_BYTES)):
                    live.append((client, window_slot))
        return live

    # -- polling support ------------------------------------------------------

    def _on_write(self, offset: int, _length: int) -> None:
        server, client, window_slot = self.locate(offset)
        self.requests_seen += 1
        if self.stamp_arrivals:
            self.arrivals[server].put((client, window_slot, self.sim.now))
        else:
            self.arrivals[server].put((client, window_slot))
