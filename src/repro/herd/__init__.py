"""HERD: the paper's key-value cache (Section 4).

The design in one paragraph: clients WRITE their GET/PUT requests over
UC into a per-client slot of the server's *request region*; server
processes poll their slots, execute the operation against a MICA-style
cache partition (masking DRAM latency with a prefetch pipeline), and
respond with a SEND over UD — one network round trip per operation,
using only the verbs that scale.

Entry point: :class:`HerdCluster` builds the whole system (server
machine, request region, NS server processes, NC client processes on
a set of client machines) on a simulated fabric and runs a workload::

    cluster = HerdCluster(HerdConfig(n_server_processes=6), APT)
    cluster.add_clients(51, Workload(get_fraction=0.95, value_size=32))
    result = cluster.run(warmup_ns=50_000, measure_ns=200_000)
    print(result.mops, result.latency["mean_us"])
"""

from repro.herd.client import HerdClientProcess
from repro.herd.cluster import HerdCluster, RunResult
from repro.herd.config import HerdConfig, partition_of
from repro.herd.region import RequestRegion
from repro.herd.server import HerdServerProcess
from repro.herd.wire import (
    GET_MARKER,
    decode_request,
    decode_response,
    encode_get,
    encode_put,
    encode_response,
)

__all__ = [
    "GET_MARKER",
    "HerdClientProcess",
    "HerdCluster",
    "HerdConfig",
    "HerdServerProcess",
    "RequestRegion",
    "RunResult",
    "decode_request",
    "decode_response",
    "encode_get",
    "encode_put",
    "encode_response",
    "partition_of",
]
