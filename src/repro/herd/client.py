"""A HERD client process (Sections 4.2-4.3).

Each client process owns:

* **one UC queue pair** connected to the server's initializer — all of
  its requests, to every server process, travel over this QP, so the
  server needs only NC connected QPs in total;
* **NS UD queue pairs** (one per server process) sharing a single
  receive CQ — before writing a request to server process *s*, the
  client posts a RECV to its *s*-th UD QP for the response.

The client keeps a window of W outstanding requests: it fills the
window, then issues one new operation per response (closed loop).
Requests are written to slot ``(s, c, sent_s mod W)``; because the
global window is also W, a slot is never reused before the server has
freed it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Deque, Dict, Generator, List, Optional, Tuple

from collections import deque

from repro.sim import Event, Simulator
from repro.verbs import (
    CompletionQueue,
    QueuePair,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)
from repro.workloads.ycsb import Operation, OpType, WorkloadStream
from repro.herd.config import HerdConfig, partition_of
from repro.herd.region import RequestRegion
from repro.herd.wire import decode_response, encode_get, encode_put

#: observer called as fn(op, latency_ns, success, now)
ResponseHook = Callable[[Operation, float, bool, float], None]

#: per-response receive buffer: GRH + the largest response
_RECV_SLOT = 40 + 1024


@dataclass
class _Pending:
    op: Operation
    sent_at: float
    window_slot: int
    recv_offset: int
    #: what the request WRITE carried, for application-level retries
    payload: bytes = b""
    raddr: int = 0
    last_sent: float = 0.0


class HerdClientProcess:
    """One closed-loop client."""

    def __init__(
        self,
        client_id: int,
        device: RdmaDevice,
        config: HerdConfig,
        stream: WorkloadStream,
    ) -> None:
        self.client_id = client_id
        self.device = device
        self.sim: Simulator = device.sim
        self.profile = device.profile
        self.config = config
        self.stream = stream
        ns = config.n_server_processes
        self.recv_cq = CompletionQueue(self.sim, "c%d.recv" % client_id)
        #: s-th UD QP carries responses from server process s
        self.ud_qps: List[QueuePair] = [
            device.create_qp(Transport.UD, recv_cq=self.recv_cq) for _ in range(ns)
        ]
        self._server_of_qpn: Dict[int, int] = {
            qp.qpn: s for s, qp in enumerate(self.ud_qps)
        }
        self.uc_qp: Optional[QueuePair] = None  # connected by the cluster
        #: set instead of a connection when requests ride DC transport
        self.dct_ah: Optional[Tuple[str, int]] = None
        self.region: Optional[RequestRegion] = None
        #: where the s-th server process's responses land, W slots each
        self.recv_mr = device.register_memory(2 * config.window * ns * _RECV_SLOT)
        self._staging = device.register_memory(2 * config.window * config.slot_bytes)
        self._recv_token = 0
        #: per-server issue sequence; responses from one server are FIFO
        #: and at most W are outstanding, so sequence mod 2W can never
        #: alias a live receive buffer
        self._sent_to_server = [0] * ns
        #: request-region slots not currently holding a pending request
        #: (a slot may only be rewritten after its response arrived)
        self._slot_free = [set(range(config.window)) for _ in range(ns)]
        self._deferred_op: Optional[Operation] = None
        #: per-server RECV buffer offsets in posting order (loss mode)
        self._recv_order: List[Deque[int]] = [deque() for _ in range(ns)]
        self._pending: List[Deque[_Pending]] = [deque() for _ in range(ns)]
        self.outstanding = 0
        self.response_hook: Optional[ResponseHook] = None
        # Observability (repro.obs): per-client response latency
        metrics = getattr(self.sim, "metrics", None)
        self._lat_hist = (
            None
            if metrics is None
            else metrics.histogram("herd.client%d.latency_ns" % client_id)
        )
        # counters
        self.issued = 0
        self.completed = 0
        self.get_misses = 0
        self.failures = 0
        self.retries = 0
        self.duplicate_responses = 0

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.uc_qp is None or self.region is None:
            raise RuntimeError("client not wired to a cluster")
        self.sim.process(self.run(), name="herd-client-%d" % self.client_id)
        if self.config.retry_timeout_ns is not None:
            self.sim.process(
                self._retry_watchdog(), name="herd-client-%d-retry" % self.client_id
            )

    def run(self) -> Generator[Event, None, None]:
        for _ in range(self.config.window):
            yield from self._issue_next()
        while True:
            cqe = yield self.recv_cq.pop()
            yield self.sim.timeout(self.profile.cq_poll_ns)
            self._absorb(cqe)
            yield from self._issue_next()

    # ------------------------------------------------------------------

    def _issue_next(self) -> Generator[Event, None, None]:
        if self._deferred_op is not None:
            op, self._deferred_op = self._deferred_op, None
        else:
            op = self.stream.next_op()
        server = partition_of(op.key, self.config.n_server_processes)
        free = self._slot_free[server]
        if not free:
            # Every slot at this server still awaits a response (only
            # possible under loss); hold the op until one frees up.
            self._deferred_op = op
            return
        window_slot = min(free)
        free.discard(window_slot)

        # 1. Pre-post the RECV for the response (Section 4.3).
        token = self._recv_token
        self._recv_token += 1
        seq = self._sent_to_server[server]
        self._sent_to_server[server] = seq + 1
        recv_offset = (seq % (2 * self.config.window)) * _RECV_SLOT * len(self.ud_qps)
        recv_offset += server * _RECV_SLOT
        yield from self.device.post_recv_timed(
            self.ud_qps[server],
            RecvRequest(wr_id=token, local=(self.recv_mr, recv_offset, _RECV_SLOT)),
        )
        self._recv_order[server].append(recv_offset)

        # 2. WRITE the request into the server's request region.
        payload = (
            encode_get(op.key) if op.op is OpType.GET else encode_put(op.key, op.value)
        )
        slot_addr = self.region.slot_addr(server, self.client_id, window_slot)
        raddr = slot_addr + self.config.slot_bytes - len(payload)
        if len(payload) <= self.profile.max_inline:
            wr = WorkRequest.write(
                raddr=raddr, rkey=self.region.mr.rkey, payload=payload,
                inline=True, signaled=False, ah=self.dct_ah,
            )
        else:
            offset = (token % (2 * self.config.window)) * self.config.slot_bytes
            self._staging.write(offset, payload)
            yield self.sim.timeout(len(payload) / 16.0)  # staging memcpy
            wr = WorkRequest.write(
                raddr=raddr, rkey=self.region.mr.rkey,
                local=(self._staging, offset, len(payload)), signaled=False,
                ah=self.dct_ah,
            )
        yield from self.device.post_send_timed(self.uc_qp, wr)
        self._pending[server].append(
            _Pending(
                op,
                self.sim.now,
                window_slot,
                recv_offset,
                payload=payload,
                raddr=raddr,
                last_sent=self.sim.now,
            )
        )
        self.outstanding += 1
        self.issued += 1

    @staticmethod
    def _take_by_slot(pending: Deque[_Pending], window_slot: int) -> Optional[_Pending]:
        """Remove and return the pending record for ``window_slot``."""
        for record in pending:
            if record.window_slot == window_slot:
                pending.remove(record)
                return record
        return None

    def _retry_watchdog(self) -> Generator[Event, None, None]:
        """Re-WRITE requests whose responses are overdue.

        A lost request leaves its slot keyhash zeroed at the server
        forever; a lost response leaves the client waiting with its
        RECV still posted.  Re-writing the request repairs both: the
        server (re-)executes and responds into the already-posted
        RECV.  MICA PUTs are idempotent here (same key, same bytes).
        """
        timeout = self.config.retry_timeout_ns
        while True:
            yield self.sim.timeout(timeout / 2.0)
            now = self.sim.now
            # Collect first (posting yields, and completions may mutate
            # the pending queues while we wait).
            overdue = [
                record
                for queue in self._pending
                for record in queue
                if now - record.last_sent > timeout
            ]
            for record in overdue:
                if not any(record in queue for queue in self._pending):
                    continue  # completed while we were retransmitting
                record.last_sent = self.sim.now
                self.retries += 1
                if len(record.payload) <= self.profile.max_inline:
                    wr = WorkRequest.write(
                        raddr=record.raddr, rkey=self.region.mr.rkey,
                        payload=record.payload, inline=True, signaled=False,
                        ah=self.dct_ah,
                    )
                else:
                    self._staging.write(0, record.payload)
                    wr = WorkRequest.write(
                        raddr=record.raddr, rkey=self.region.mr.rkey,
                        local=(self._staging, 0, len(record.payload)),
                        signaled=False, ah=self.dct_ah,
                    )
                yield from self.device.post_send_timed(self.uc_qp, wr)

    def _absorb(self, cqe) -> None:
        server = self._server_of_qpn[cqe.qpn]
        pending = self._pending[server]
        if self.config.retry_timeout_ns is None:
            # Lossless operation: per-server responses are FIFO, so the
            # oldest pending record is the one being answered.
            record = pending.popleft()
            payload = self.recv_mr.read(record.recv_offset + 40, cqe.byte_len)
        else:
            # Loss mode: a dropped request makes per-server completions
            # out of order, so responses carry a window-slot byte.  The
            # data landed in the *oldest posted* RECV buffer (RECVs are
            # consumed FIFO regardless of which request is answered).
            offset = self._recv_order[server].popleft()
            raw = self.recv_mr.read(offset + 40, cqe.byte_len)
            slot, payload = raw[0], raw[1:]
            record = self._take_by_slot(pending, slot)
            if record is None:
                # A duplicate response (retry raced the original).  Put
                # a fresh RECV in place of the one this duplicate ate so
                # the still-pending request it belonged to can complete.
                self.duplicate_responses += 1
                self.device.post_recv(
                    self.ud_qps[server],
                    RecvRequest(wr_id=0, local=(self.recv_mr, offset, _RECV_SLOT)),
                )
                self._recv_order[server].append(offset)
                return
        self.outstanding -= 1
        self.completed += 1
        self._slot_free[server].add(record.window_slot)
        latency = self.sim.now - record.sent_at
        if self._lat_hist is not None:
            self._lat_hist.observe(latency)
        success, value = decode_response(record.op.op, payload)
        if record.op.op is OpType.GET and not success:
            self.get_misses += 1
        elif not success:
            self.failures += 1
        if self.response_hook is not None:
            self.response_hook(record.op, latency, success, self.sim.now)
