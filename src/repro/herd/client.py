"""A HERD client process (Sections 4.2-4.3).

Each client process owns:

* **one UC queue pair** connected to the server's initializer — all of
  its requests, to every server process, travel over this QP, so the
  server needs only NC connected QPs in total;
* **NS UD queue pairs** (one per server process) sharing a single
  receive CQ — before writing a request to server process *s*, the
  client posts a RECV to its *s*-th UD QP for the response.

The client keeps a window of W outstanding requests: it fills the
window, then issues one new operation per response (closed loop).
Requests are written to slot ``(s, c, sent_s mod W)``; because the
global window is also W, a slot is never reused before the server has
freed it.

Resilience (Section 2.2.3's "rare application-level retries", grown
into a full client-side policy for fault injection):

* overdue requests are re-WRITTEN with exponential backoff and
  deterministic jitter drawn from the client's own named RNG stream;
* the retry timeout optionally adapts to observed response times
  (Jacobson/Karels srtt + 4 * rttvar, with Karn's rule on samples);
* a per-op retry budget bounds the effort; abandoned ops *quarantine*
  their window slot so a late response cannot be matched to a newer
  request reusing the slot;
* when one server process is saturated or crashed, new ops for it are
  *parked* (bounded) and the client keeps issuing to the healthy
  partitions — per-core graceful degradation.

Replication (``HerdConfig.replication_factor > 1``, see docs/HA.md):
the client keeps one response lane (UD QP + RECV ring) per
(replica, partition) pair and writes each request into the *current
primary's* request region, looked up in a per-partition
:class:`~repro.ha.failover.ReplicaMap`.  A ``RESP_STALE_EPOCH`` nack or
a monitor config notification re-aims in-flight ops at the new primary
(same window slot, same slot epoch — the response path cannot tell a
replayed op from a first send) and un-parks the partition immediately.
With rf=1 every HA branch is dead and the classic layout is untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Generator, List, Optional, Tuple

from collections import deque

from repro.sim import Event, Simulator
from repro.verbs import (
    CompletionQueue,
    QueuePair,
    RdmaDevice,
    RecvRequest,
    Transport,
    WorkRequest,
)
from repro.workloads.ycsb import Operation, OpType, WorkloadStream
from repro.herd.config import HerdConfig, route_key
from repro.herd.region import RequestRegion
from repro.herd.wire import (
    RESP_NOT_OWNER,
    RESP_OK,
    RESP_RETRY_AFTER,
    RESP_STALE_EPOCH,
    decode_response,
    encode_get,
    encode_put,
)

#: observer called as fn(op, latency_ns, success, now)
ResponseHook = Callable[[Operation, float, bool, float], None]

#: verification observer called as fn(op, success, value, now) with the
#: decoded response payload (the chaos harness checks values with this)
PayloadHook = Callable[[Operation, bool, Optional[bytes], float], None]

#: per-response receive buffer: GRH + the loss-mode slot/epoch prefix +
#: the largest response
_RECV_SLOT = 40 + 2 + 1024


@dataclass
class _Pending:
    op: Operation
    sent_at: float
    server: int
    window_slot: int
    recv_offset: int
    #: what the request WRITE carried, for application-level retries
    payload: bytes = b""
    raddr: int = 0
    last_sent: float = 0.0
    #: re-sends so far (bounded by the retry budget)
    attempts: int = 0
    #: sim time at which the retry watchdog may re-send this op
    deadline: float = 0.0
    #: the slot epoch this request carries (echoed by the server)
    epoch: int = 0
    #: which replica of the partition the request was last aimed at
    replica: int = 0
    #: consecutive RESP_RETRY_AFTER nacks (repro.qos backoff budget)
    nacks: int = 0


class HerdClientProcess:
    """One closed-loop client."""

    def __init__(
        self,
        client_id: int,
        device: RdmaDevice,
        config: HerdConfig,
        stream: WorkloadStream,
        retry_rng: Optional[random.Random] = None,
    ) -> None:
        self.client_id = client_id
        self.device = device
        self.sim: Simulator = device.sim
        self.profile = device.profile
        self.config = config
        self.stream = stream
        ns = config.n_server_processes
        rf = config.replication_factor
        self._ns = ns
        self._ha = rf > 1
        #: status-byte framing: HA and QoS responses both carry a status
        #: byte between the loss-mode prefix and the body
        self._status_framing = self._ha or config.qos is not None
        #: response slot: the status byte makes framed slots 1 B wider
        self._recv_slot = _RECV_SLOT + (1 if self._status_framing else 0)
        #: per-lane RECV ring depth; deeper under replication because
        #: stale nacks and replays consume extra buffers
        self._ring = (4 if self._ha else 2) * config.window
        self.recv_cq = CompletionQueue(self.sim, "c%d.recv" % client_id)
        #: lane r*NS+s carries responses from replica r of server
        #: process s (rf=1 degenerates to lane == server)
        self.ud_qps: List[QueuePair] = [
            device.create_qp(Transport.UD, recv_cq=self.recv_cq)
            for _ in range(rf * ns)
        ]
        self._lane_of_qpn: Dict[int, int] = {
            qp.qpn: lane for lane, qp in enumerate(self.ud_qps)
        }
        self.uc_qp: Optional[QueuePair] = None  # connected by the cluster
        #: set instead of a connection when requests ride DC transport
        self.dct_ah: Optional[Tuple[str, int]] = None
        self.region: Optional[RequestRegion] = None
        # HA wiring (left inert with rf=1): per-replica request regions
        # and UC QPs, the partition->primary map, and failover counters.
        self.ha_map = None  # ReplicaMap, set by the cluster when rf > 1
        self.ha_regions: List[RequestRegion] = []
        self.ha_uc_qps: List[QueuePair] = []
        #: elastic routing (repro.elastic): the client's copy of the
        #: shard map, or None for the classic static modulo mapping
        self.shard_map = None
        #: history observer for the linearizability checker, called as
        #: fn(kind, op, server, window_slot, epoch, success, value, now)
        #: with kind in {"invoke", "response", "stale"}
        self.ha_event_hook = None
        #: where each lane's responses land, ``_ring`` slots per lane
        self.recv_mr = device.register_memory(
            self._ring * len(self.ud_qps) * self._recv_slot
        )
        self._staging = device.register_memory(2 * config.window * config.slot_bytes)
        self._recv_token = 0
        self._retry_token = 0
        #: per-lane issue sequence; at most W requests per partition are
        #: outstanding, so sequence mod ``_ring`` can never alias a live
        #: receive buffer
        self._sent_to_server = [0] * (rf * ns)
        #: request-region slots not currently holding a pending request
        #: (a slot may only be rewritten after its response arrived)
        self._slot_free = [set(range(config.window)) for _ in range(ns)]
        #: slot -> epoch of abandoned ops: neither free nor pending,
        #: until the late response shows up and releases them
        self._quarantined: List[Dict[int, int]] = [{} for _ in range(ns)]
        #: per-slot reuse counter, embedded in requests and echoed in
        #: responses so stale duplicates cannot alias a reused slot
        self._slot_epoch = [[0] * config.window for _ in range(ns)]
        #: ops drawn from the stream whose partition had no free slot;
        #: issued as soon as a slot frees (graceful degradation)
        self._parked: List[Deque[Operation]] = [deque() for _ in range(ns)]
        self._park_limit = 2 * config.window
        #: per-lane RECV buffer offsets in posting order (loss mode)
        self._recv_order: List[Deque[int]] = [deque() for _ in range(rf * ns)]
        self._pending: List[Deque[_Pending]] = [deque() for _ in range(ns)]
        self.outstanding = 0
        self.response_hook: Optional[ResponseHook] = None
        self.payload_hook: Optional[PayloadHook] = None
        #: when set, draw no new ops from the stream after this time
        #: (the chaos harness uses this to drain the windows)
        self.stop_after: Optional[float] = None
        #: open-loop mode (repro.qos): an ArrivalProcess that schedules
        #: request arrivals independently of completions.  None keeps
        #: the paper's closed loop.  Set before :meth:`start`.
        self.arrivals = None
        #: retry jitter / backoff randomness: a named child stream of
        #: the cluster seed, so retries never perturb workload draws
        self._rng = retry_rng if retry_rng is not None else random.Random(client_id)
        # adaptive timeout state (Jacobson/Karels)
        self._srtt: Optional[float] = None
        self._rttvar = 0.0
        # Observability (repro.obs): per-client response latency
        metrics = getattr(self.sim, "metrics", None)
        self._lat_hist = (
            None
            if metrics is None
            else metrics.histogram("herd.client%d.latency_ns" % client_id)
        )
        # counters
        self.issued = 0
        self.completed = 0
        self.get_misses = 0
        self.failures = 0
        self.retries = 0
        self.duplicate_responses = 0
        self.abandoned = 0
        self.late_responses = 0
        self.stale_nacks = 0
        self.replays = 0
        self.failovers = 0
        self.not_owner_nacks = 0
        self.reroutes = 0
        self.map_refreshes = 0
        # QoS / open-loop counters
        self.offered = 0
        self.overflow_dropped = 0
        self.retry_after_nacks = 0
        self.rejected = 0
        #: ingress pause armed by RESP_RETRY_AFTER (429 semantics: the
        #: hint throttles the *source*, not just the nacked request)
        self._nack_pause_until = 0.0
        self.nack_pause_drops = 0
        # Resilience events surfaced as registry *counters* (shared
        # across clients, unlike the per-client gauges): retry budgets
        # draining and slots entering quarantine were silent before.
        self._retries_exhausted_ctr = None
        self._slots_quarantined_ctr = None
        if metrics is not None:
            self._retries_exhausted_ctr = metrics.counter("client.retries_exhausted")
            self._slots_quarantined_ctr = metrics.counter("client.slots_quarantined")
            prefix = "herd.client%d." % client_id
            metrics.gauge_fn(prefix + "retries", lambda: self.retries)
            metrics.gauge_fn(
                prefix + "duplicate_responses", lambda: self.duplicate_responses
            )
            metrics.gauge_fn(prefix + "abandoned", lambda: self.abandoned)
            metrics.gauge_fn(prefix + "late_responses", lambda: self.late_responses)
            if self._ha:
                metrics.gauge_fn(prefix + "stale_nacks", lambda: self.stale_nacks)
                metrics.gauge_fn(prefix + "replays", lambda: self.replays)
                metrics.gauge_fn(prefix + "failovers", lambda: self.failovers)
                metrics.gauge_fn(prefix + "reroutes", lambda: self.reroutes)
            if config.qos is not None:
                metrics.gauge_fn(prefix + "offered", lambda: self.offered)
                metrics.gauge_fn(
                    prefix + "overflow_dropped", lambda: self.overflow_dropped
                )
                metrics.gauge_fn(
                    prefix + "retry_after_nacks", lambda: self.retry_after_nacks
                )
                metrics.gauge_fn(prefix + "rejected", lambda: self.rejected)

    # ------------------------------------------------------------------

    def start(self) -> None:
        if self.uc_qp is None or self.region is None:
            raise RuntimeError("client not wired to a cluster")
        if self.arrivals is not None:
            self.sim.process(
                self._open_loop(), name="herd-client-%d" % self.client_id
            )
            self.sim.process(
                self._responder(), name="herd-client-%d-resp" % self.client_id
            )
        else:
            self.sim.process(self.run(), name="herd-client-%d" % self.client_id)
        if self.config.retry_timeout_ns is not None:
            self.sim.process(
                self._retry_watchdog(), name="herd-client-%d-retry" % self.client_id
            )

    def run(self) -> Generator[Event, None, None]:
        for _ in range(self.config.window):
            yield from self._issue_next()
        while True:
            cqe = yield self.recv_cq.pop()
            yield self.sim.timeout(self.profile.cq_poll_ns)
            self._absorb(cqe)
            yield from self._issue_next()

    # -- open-loop mode (repro.qos) ------------------------------------

    def _open_loop(self) -> Generator[Event, None, None]:
        """Issue requests on the arrival process's schedule.

        Unlike the closed loop, arrivals do not wait for completions:
        when the window (and the bounded parking lot) for a partition
        is full, the arrival is *dropped at the client* and counted —
        the open-loop analogue of a full front-end queue.
        """
        while True:
            yield self.sim.timeout(self.arrivals.next_gap_ns(self.sim.now))
            if self.stop_after is not None and self.sim.now >= self.stop_after:
                return
            self.offered += 1
            if self.sim.now < self._nack_pause_until:
                # A RESP_RETRY_AFTER nack pauses this client's intake:
                # fresh arrivals are shed at the ingress for free — no
                # slot claimed, no WRITE sent, no server cycle burned.
                # The already-nacked ops act as the probes; their
                # admission is what lifts the pause's renewal.
                self.nack_pause_drops += 1
                continue
            op = self.stream.next_op()
            server = route_key(op.key, self._ns, self.shard_map)
            if self._slot_free[server]:
                yield from self._send_op(op, server)
            elif len(self._parked[server]) < self._park_limit:
                self._parked[server].append(op)
            else:
                self.overflow_dropped += 1

    def _responder(self) -> Generator[Event, None, None]:
        """Absorb responses and drain parked arrivals into freed slots."""
        while True:
            cqe = yield self.recv_cq.pop()
            yield self.sim.timeout(self.profile.cq_poll_ns)
            self._absorb(cqe)
            for server in range(self._ns):
                while self._parked[server] and self._slot_free[server]:
                    yield from self._send_op(self._parked[server].popleft(), server)

    # ------------------------------------------------------------------

    def _issue_next(self) -> Generator[Event, None, None]:
        # Parked ops first: the oldest op whose partition has a slot
        # again (its server recovered, or a response freed a slot).
        for server in range(len(self._parked)):
            if self._parked[server] and self._slot_free[server]:
                yield from self._send_op(self._parked[server].popleft(), server)
                return
        if self.stop_after is not None and self.sim.now >= self.stop_after:
            return  # draining: no new work
        while True:
            if sum(len(q) for q in self._parked) >= self._park_limit:
                # Every partition we have drawn work for is saturated
                # (e.g. its server process crashed).  Hold off; the
                # next completion re-enters this path.
                return
            op = self.stream.next_op()
            server = route_key(op.key, self._ns, self.shard_map)
            if self._slot_free[server]:
                yield from self._send_op(op, server)
                return
            # This partition is saturated: park the op and keep the
            # closed loop running against the healthy partitions.
            self._parked[server].append(op)

    def _send_op(self, op: Operation, server: int) -> Generator[Event, None, None]:
        free = self._slot_free[server]
        window_slot = min(free)
        free.discard(window_slot)

        # 1. Pre-post the RECV for the response (Section 4.3) on the
        #    lane of the partition's current primary replica.
        replica = self.ha_map.primary[server] if self._ha else 0
        lane = replica * self._ns + server
        token = self._recv_token
        self._recv_token += 1
        seq = self._sent_to_server[lane]
        self._sent_to_server[lane] = seq + 1
        recv_offset = (seq % self._ring) * self._recv_slot * len(self.ud_qps)
        recv_offset += lane * self._recv_slot

        loss_mode = self.config.retry_timeout_ns is not None
        if loss_mode:
            epoch = (self._slot_epoch[server][window_slot] + 1) & 0xFF
            self._slot_epoch[server][window_slot] = epoch
            wire_epoch = epoch
        else:
            epoch = 0
            wire_epoch = None
        payload = (
            encode_get(op.key, epoch=wire_epoch)
            if op.op is OpType.GET
            else encode_put(op.key, op.value, epoch=wire_epoch)
        )
        region = self.ha_regions[replica] if self._ha else self.region
        uc_qp = self.ha_uc_qps[replica] if self._ha else self.uc_qp
        slot_addr = region.slot_addr(server, self.client_id, window_slot)
        raddr = slot_addr + self.config.slot_bytes - len(payload)

        # Atomic bookkeeping: the QP post, the posting-order mirror,
        # and (loss mode) the pending record all land in one instant,
        # with no yield in between.  The mirror must match the order
        # the NIC sees — another process (the responder re-arming a
        # RECV after a nack or duplicate) may run inside any yield
        # window, and appending around one would record a posting
        # order the NIC never saw.  The pending record joins at the
        # same instant so the RECV-accounting invariant
        # (len(recv_order) == len(pending) + len(quarantined)) holds
        # at every yield point; no response can match it before the
        # WRITE below is posted because matching requires this slot
        # epoch, and the deadline stays infinite until the WRITE is
        # out so the retry watchdog ignores the half-sent op.
        self.device.post_recv(
            self.ud_qps[lane],
            RecvRequest(
                wr_id=token, local=(self.recv_mr, recv_offset, self._recv_slot)
            ),
        )
        self._recv_order[lane].append(recv_offset)
        record: Optional[_Pending] = None
        if loss_mode:
            record = _Pending(
                op,
                self.sim.now,
                server,
                window_slot,
                recv_offset,
                payload=payload,
                raddr=raddr,
                last_sent=self.sim.now,
                deadline=float("inf"),
                epoch=epoch,
                replica=replica,
            )
            self._pending[server].append(record)
        self.outstanding += 1
        self.issued += 1
        # post_recv_timed's cost, inlined so the block above stays atomic
        yield self.sim.timeout(self.device.profile.post_recv_ns)
        yield self.device.machine.pcie.doorbell()

        # 2. WRITE the request into the server's request region.
        if len(payload) <= self.profile.max_inline:
            wr = WorkRequest.write(
                raddr=raddr, rkey=region.mr.rkey, payload=payload,
                inline=True, signaled=False, ah=self.dct_ah,
            )
        else:
            offset = (token % (2 * self.config.window)) * self.config.slot_bytes
            self._staging.write(offset, payload)
            yield self.sim.timeout(len(payload) / 16.0)  # staging memcpy
            wr = WorkRequest.write(
                raddr=raddr, rkey=region.mr.rkey,
                local=(self._staging, offset, len(payload)), signaled=False,
                ah=self.dct_ah,
            )
        yield from self.device.post_send_timed(uc_qp, wr)
        now = self.sim.now
        if loss_mode:
            # The WRITE is on the wire: start the retry clock.
            record.sent_at = now
            record.last_sent = now
            record.deadline = now + (self._rto() or 0.0)
        else:
            # Lossless completions pop the pending queue FIFO, so the
            # record must join in WRITE-posting order, not issue order.
            self._pending[server].append(
                _Pending(
                    op,
                    now,
                    server,
                    window_slot,
                    recv_offset,
                    payload=payload,
                    raddr=raddr,
                    last_sent=now,
                    deadline=now,
                    epoch=epoch,
                    replica=replica,
                )
            )
        if self.ha_event_hook is not None:
            self.ha_event_hook(
                "invoke", op, server, window_slot, epoch, None, None, now
            )

    @staticmethod
    def _take_by_slot(
        pending: Deque[_Pending], window_slot: int, epoch: int
    ) -> Optional[_Pending]:
        """Remove and return the pending record a response answers.

        Both the slot and its epoch must match: a mismatched epoch
        means the response belongs to an older incarnation of the slot
        (a stale duplicate) and must not complete the current op.
        """
        for record in pending:
            if record.window_slot == window_slot and record.epoch == epoch:
                pending.remove(record)
                return record
        return None

    # -- retries -------------------------------------------------------

    def _rto(self) -> Optional[float]:
        """The current base retry timeout (before backoff)."""
        cfg = self.config
        if cfg.retry_timeout_ns is None:
            return None
        if cfg.adaptive_retry and self._srtt is not None:
            return max(
                cfg.min_retry_timeout_ns, self._srtt + 4.0 * self._rttvar
            )
        return cfg.retry_timeout_ns

    def _observe_rtt(self, sample: float) -> None:
        if self._srtt is None:
            self._srtt = sample
            self._rttvar = sample / 2.0
        else:
            self._rttvar = 0.75 * self._rttvar + 0.25 * abs(self._srtt - sample)
            self._srtt = 0.875 * self._srtt + 0.125 * sample

    def _retry_watchdog(self) -> Generator[Event, None, None]:
        """Re-WRITE requests whose responses are overdue.

        A lost request leaves its slot keyhash zeroed at the server
        forever; a lost response leaves the client waiting with its
        RECV still posted.  Re-writing the request repairs both: the
        server (re-)executes and responds into the already-posted
        RECV.  MICA PUTs are idempotent here (same key, same bytes).
        """
        cfg = self.config
        while True:
            base = max(cfg.min_retry_timeout_ns, self._rto())
            yield self.sim.timeout(base / 2.0)
            now = self.sim.now
            # Collect first (posting yields, and completions may mutate
            # the pending queues while we wait).
            overdue = [
                record
                for queue in self._pending
                for record in queue
                if now >= record.deadline
            ]
            for record in overdue:
                if not any(record in queue for queue in self._pending):
                    continue  # completed while we were retransmitting
                if (
                    cfg.retry_budget is not None
                    and record.attempts >= cfg.retry_budget
                ):
                    if (
                        self._ha
                        and record.replica != self.ha_map.primary[record.server]
                    ):
                        # The budget drained against a dead or demoted
                        # replica: redirect instead of giving up.
                        yield from self._replay(record)
                        continue
                    if self._retries_exhausted_ctr is not None:
                        self._retries_exhausted_ctr.inc()
                    self._abandon(record)
                    continue
                record.attempts += 1
                self.retries += 1
                backoff = cfg.retry_backoff ** record.attempts
                jitter = 1.0 + cfg.retry_jitter * self._rng.random()
                record.deadline = self.sim.now + self._rto() * backoff * jitter
                record.last_sent = self.sim.now
                yield from self._post_request(record)

    def _post_request(self, record: _Pending) -> Generator[Event, None, None]:
        """(Re-)WRITE a pending record's request bytes to its replica."""
        cfg = self.config
        region = self.ha_regions[record.replica] if self._ha else self.region
        uc_qp = self.ha_uc_qps[record.replica] if self._ha else self.uc_qp
        if len(record.payload) <= self.profile.max_inline:
            wr = WorkRequest.write(
                raddr=record.raddr, rkey=region.mr.rkey,
                payload=record.payload, inline=True, signaled=False,
                ah=self.dct_ah,
            )
        else:
            offset = (self._retry_token % (2 * cfg.window)) * cfg.slot_bytes
            self._retry_token += 1
            self._staging.write(offset, record.payload)
            wr = WorkRequest.write(
                raddr=record.raddr, rkey=region.mr.rkey,
                local=(self._staging, offset, len(record.payload)),
                signaled=False, ah=self.dct_ah,
            )
        yield from self.device.post_send_timed(uc_qp, wr)

    # -- failover (replication only) -----------------------------------

    def ha_on_config(
        self, partition: int, primary: Optional[int], epoch: int
    ) -> None:
        """Monitor notification: adopt the config, re-aim, un-park."""
        if not self._ha or primary is None:
            return
        if not self.ha_map.update(partition, primary, epoch):
            return  # stale/duplicate, or an epoch bump with no move
        self.failovers += 1
        self.sim.process(
            self._failover(partition),
            name="herd-client-%d-failover" % self.client_id,
        )

    def _failover(self, server: int) -> Generator[Event, None, None]:
        """Replay in-flight ops at the new primary, then un-park.

        Lease-aware parking: a promotion re-opens the partition
        immediately — the backlog is issued against the new primary
        without waiting for a successful probe.
        """
        replica = self.ha_map.primary[server]
        for record in list(self._pending[server]):
            if record.replica != replica:
                yield from self._replay(record)
        while self._parked[server] and self._slot_free[server]:
            yield from self._send_op(self._parked[server].popleft(), server)

    def _replay(self, record: _Pending) -> Generator[Event, None, None]:
        """Re-aim a pending request at its partition's current primary.

        A fresh RECV goes on the new replica's lane and the request
        bytes are re-WRITTEN into the new primary's request region —
        same window slot, same slot epoch, so the response path cannot
        tell a replayed op from a first send.  The retry clock restarts
        (redirecting is not evidence of loss on the new path).
        """
        server = record.server
        if record not in self._pending[server]:
            return  # completed (or abandoned) in the meantime
        replica = self.ha_map.primary[server]
        if record.replica == replica:
            return  # already re-aimed by a racing stale nack
        record.replica = replica
        self.replays += 1
        lane = replica * self._ns + server
        token = self._recv_token
        self._recv_token += 1
        seq = self._sent_to_server[lane]
        self._sent_to_server[lane] = seq + 1
        recv_offset = (seq % self._ring) * self._recv_slot * len(self.ud_qps)
        recv_offset += lane * self._recv_slot
        # mirror-append before the timed yield (see _send_op)
        self._recv_order[lane].append(recv_offset)
        record.recv_offset = recv_offset
        yield from self.device.post_recv_timed(
            self.ud_qps[lane],
            RecvRequest(
                wr_id=token, local=(self.recv_mr, recv_offset, self._recv_slot)
            ),
        )
        region = self.ha_regions[replica]
        record.raddr = (
            region.slot_addr(server, self.client_id, record.window_slot)
            + self.config.slot_bytes
            - len(record.payload)
        )
        now = self.sim.now
        record.last_sent = now
        record.attempts = 0
        record.deadline = now + (self._rto() or 0.0)
        yield from self._post_request(record)

    def _abandon(self, record: _Pending) -> None:
        """Give up on an op whose retry budget is spent.

        The window slot is *quarantined*, not freed: the server may
        still execute a retry in flight and respond later, and that
        response must not be matched to a newer op reusing the slot.
        A late response releases the quarantine; under permanent loss
        the slot stays retired (degraded but safe).
        """
        queue = self._pending[record.server]
        if record in queue:
            queue.remove(record)
        self.outstanding -= 1
        self.abandoned += 1
        self._quarantined[record.server][record.window_slot] = record.epoch
        if self._slots_quarantined_ctr is not None:
            self._slots_quarantined_ctr.inc()

    # -- completion ----------------------------------------------------

    def _absorb(self, cqe) -> None:
        lane = self._lane_of_qpn[cqe.qpn]
        server = lane % self._ns
        pending = self._pending[server]
        if self.config.retry_timeout_ns is None:
            # Lossless operation: per-server responses are FIFO, so the
            # oldest pending record is the one being answered.
            record = pending.popleft()
            payload = self.recv_mr.read(record.recv_offset + 40, cqe.byte_len)
        else:
            # Loss mode: a dropped request makes per-server completions
            # out of order, so responses carry a window-slot byte.  The
            # data landed in the *oldest posted* RECV buffer (RECVs are
            # consumed FIFO regardless of which request is answered).
            offset = self._recv_order[lane].popleft()
            raw = self.recv_mr.read(offset + 40, cqe.byte_len)
            if self._status_framing:
                slot, epoch, status = raw[0], raw[1], raw[2]
                payload = raw[3:]
            else:
                slot, epoch, status = raw[0], raw[1], RESP_OK
                payload = raw[2:]
            record = self._take_by_slot(pending, slot, epoch)
            if record is None:
                if self._quarantined[server].get(slot) == epoch:
                    # The answer to an op we had abandoned: release the
                    # quarantined slot.  This response consumed the
                    # RECV the abandoned op posted, so the RECV
                    # accounting is already balanced — no replenish.
                    del self._quarantined[server][slot]
                    self._slot_free[server].add(slot)
                    self.late_responses += 1
                    return
                # A duplicate response (retry raced the original).  Put
                # a fresh RECV in place of the one this duplicate ate so
                # the still-pending request it belonged to can complete.
                # Allocated through the ring rotation, not at the
                # consumed offset: a same-offset re-arm can collide with
                # a later send's rotation while it waits, aiming two
                # RECVs at one buffer.
                self.duplicate_responses += 1
                seq = self._sent_to_server[lane]
                self._sent_to_server[lane] = seq + 1
                offset = (seq % self._ring) * self._recv_slot * len(self.ud_qps)
                offset += lane * self._recv_slot
                self.device.post_recv(
                    self.ud_qps[lane],
                    RecvRequest(
                        wr_id=0, local=(self.recv_mr, offset, self._recv_slot)
                    ),
                )
                self._recv_order[lane].append(offset)
                return
            if status == RESP_STALE_EPOCH:
                self._on_stale_nack(record, lane, offset)
                return
            if status == RESP_NOT_OWNER:
                self._on_not_owner(record, lane, offset)
                return
            if status == RESP_RETRY_AFTER:
                self._on_retry_after(record, lane, offset)
                return
        self.outstanding -= 1
        self.completed += 1
        self._slot_free[server].add(record.window_slot)
        latency = self.sim.now - record.sent_at
        if record.attempts == 0:
            # Karn's rule: only un-retried ops give unambiguous samples.
            self._observe_rtt(latency)
        if self._lat_hist is not None:
            self._lat_hist.observe(latency)
        success, value = decode_response(record.op.op, payload)
        if record.op.op is OpType.GET and not success:
            self.get_misses += 1
        elif not success:
            self.failures += 1
        if self.response_hook is not None:
            self.response_hook(record.op, latency, success, self.sim.now)
        if self.payload_hook is not None:
            self.payload_hook(record.op, success, value, self.sim.now)
        if self.ha_event_hook is not None:
            self.ha_event_hook(
                "response", record.op, server, record.window_slot,
                record.epoch, success, value, self.sim.now,
            )

    def _on_stale_nack(self, record: _Pending, lane: int, offset: int) -> None:
        """A replica refused the request: it no longer owns the partition.

        The op stays pending (it was never executed) and is re-aimed at
        the primary the replica map currently names.  If the map still
        points at the nacker — the monitor's CONFIG hasn't reached us —
        the consumed RECV is re-armed so a retry or the eventual replay
        still has a buffer, and the config notification triggers the
        actual move.
        """
        self.stale_nacks += 1
        now = self.sim.now
        record.deadline = now + (self._rto() or 0.0)
        self._pending[record.server].append(record)
        if self.ha_event_hook is not None:
            self.ha_event_hook(
                "stale", record.op, record.server, record.window_slot,
                record.epoch, None, None, now,
            )
        if record.replica != self.ha_map.primary[record.server]:
            self.sim.process(
                self._replay(record),
                name="herd-client-%d-replay" % self.client_id,
            )
        else:
            self.device.post_recv(
                self.ud_qps[lane],
                RecvRequest(
                    wr_id=0, local=(self.recv_mr, offset, self._recv_slot)
                ),
            )
            self._recv_order[lane].append(offset)
            record.recv_offset = offset

    # -- overload nacks (repro.qos) ------------------------------------

    def _on_retry_after(self, record: _Pending, lane: int, offset: int) -> None:
        """The server shed this request: back off before re-sending.

        The op was never executed (the nack is the whole answer) and
        the server cleared its slot.  Within the nack budget the op
        stays pending with a deliberately *late* deadline — base
        ``retry_after_ns`` growing exponentially per consecutive nack,
        jittered from the client's own RNG stream — and the retry
        watchdog performs the deferred re-send.  Past the budget the op
        is rejected outright: slot freed (nothing is in flight, so no
        quarantine is needed) and the RECV this nack consumed is not
        replaced, keeping the ring accounting exact.

        The replacement RECV is allocated through the same ring
        rotation as first sends — re-arming the just-consumed offset
        would let a later send's rotation wrap onto it while the nacked
        op still waits out its backoff, leaving two RECVs aimed at one
        buffer (the second message then overwrites the first's bytes
        before it is read).
        """
        qos = self.config.qos
        self.retry_after_nacks += 1
        record.nacks += 1
        now = self.sim.now
        jitter = 1.0 + self.config.retry_jitter * self._rng.random()
        # 429 semantics: the hint throttles the whole source.  Fresh
        # open-loop arrivals are shed at the ingress until the pause
        # expires, so a saturated server is not burning cycles nacking
        # a fleet that will only be nacked again.  The pause is the
        # *base* hint (jittered, not per-op exponential): each client
        # keeps probing roughly once per retry_after_ns, which is what
        # lets the fleet discover recovered capacity quickly.
        self._nack_pause_until = max(
            self._nack_pause_until, now + qos.retry_after_ns * jitter
        )
        if (
            qos.retry_after_budget is not None
            and record.nacks >= qos.retry_after_budget
        ):
            self.rejected += 1
            self.abandoned += 1  # keeps the accounting identity closed
            self.outstanding -= 1
            self._slot_free[record.server].add(record.window_slot)
            return
        seq = self._sent_to_server[lane]
        self._sent_to_server[lane] = seq + 1
        offset = (seq % self._ring) * self._recv_slot * len(self.ud_qps)
        offset += lane * self._recv_slot
        self.device.post_recv(
            self.ud_qps[lane],
            RecvRequest(wr_id=0, local=(self.recv_mr, offset, self._recv_slot)),
        )
        self._recv_order[lane].append(offset)
        record.recv_offset = offset
        backoff = qos.retry_after_backoff ** (record.nacks - 1)
        record.attempts = 0
        record.deadline = now + qos.retry_after_ns * backoff * jitter
        self._pending[record.server].append(record)

    # -- elastic resharding (repro.elastic) ----------------------------

    def elastic_on_map(self, shard_map) -> None:
        """Coordinator notification: adopt a newer shard map.

        Version-fenced like :meth:`ha_on_config` epochs — a delayed
        publication can never roll routing back.  In-flight and parked
        ops are *not* proactively re-aimed: a mis-routed one earns a
        ``RESP_NOT_OWNER`` nack and reroutes through
        :meth:`_on_not_owner`.
        """
        if self.shard_map is None or shard_map.version > self.shard_map.version:
            self.shard_map = shard_map
            self.map_refreshes += 1

    def _on_not_owner(self, record: _Pending, lane: int, offset: int) -> None:
        """The partition no longer owns the key's range: re-route.

        The op was never executed there (the nack is the whole answer),
        so it is withdrawn from this partition — slot freed, accounting
        reversed — and parked at the owner the current map names, to be
        re-issued as a fresh request.  If our map still names the
        nacking partition (its publication is in flight to us), the op
        stays pending here with a re-armed RECV; the retry path tries
        again and reroutes once the map lands.
        """
        self.not_owner_nacks += 1
        now = self.sim.now
        server = record.server
        owner = route_key(record.op.key, self._ns, self.shard_map)
        if self.ha_event_hook is not None:
            self.ha_event_hook(
                "reroute", record.op, server, record.window_slot,
                record.epoch, None, None, now,
            )
        if owner != server:
            self._slot_free[server].add(record.window_slot)
            self.outstanding -= 1
            self.issued -= 1
            self.reroutes += 1
            self._parked[owner].appendleft(record.op)
            return
        record.deadline = now + (self._rto() or 0.0)
        self._pending[server].append(record)
        self.device.post_recv(
            self.ud_qps[lane],
            RecvRequest(wr_id=0, local=(self.recv_mr, offset, self._recv_slot)),
        )
        self._recv_order[lane].append(offset)
        record.recv_offset = offset
