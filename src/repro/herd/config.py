"""HERD configuration and key partitioning."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.qos.config import QosConfig


@dataclass(frozen=True)
class HerdConfig:
    """Deployment parameters (defaults follow Section 5.1).

    The request region is ``NS * NC * W`` KB; with the paper's NC = 200,
    NS = 16, W = 2 that is ~6 MB and fits in the server's L3 cache.
    """

    #: NS: server processes, each pinned to one core with its own
    #: MICA partition (EREW) and one UD QP for responses
    n_server_processes: int = 6
    #: W: per-client window — outstanding requests a client may have
    #: at *each* server process (also the client's global window)
    window: int = 4
    #: request slot size; the largest key-value item is 1 KB
    slot_bytes: int = 1024
    #: MICA index entries per server process (the paper uses 64 Mi;
    #: scaled down by default to keep simulations light)
    index_entries: int = 2 ** 16
    #: MICA circular log bytes per server process (paper: 4 GB)
    log_bytes: int = 1 << 22
    #: consecutive empty poll iterations before a no-op flushes the
    #: request pipeline (Section 4.1.1)
    noop_after_polls: int = 100
    #: request pipeline depth = MICA's max random accesses per op
    pipeline_depth: int = 2
    #: enable the prefetch pipeline (Figure 7's ablation switch)
    prefetch: bool = True
    #: transport carrying request WRITEs: "UC" (the paper's design) or
    #: "DC" (the Connect-IB Dynamically Connected extension the paper
    #: expects to lift the ~260-client scalability limit, Section 5.5)
    request_transport: str = "UC"
    #: application-level retry timeout in ns, or None to disable.
    #: UC/UD never retransmit (Section 2.2.3): HERD "sacrifices
    #: transport-level retransmission ... at the cost of rare
    #: application-level retries".  Set this well above the p99
    #: latency — a premature retry desynchronises response matching.
    retry_timeout_ns: Optional[float] = None
    #: multiplier applied to the retry timeout per attempt (exponential
    #: backoff keeps retry traffic from piling onto a struggling server)
    retry_backoff: float = 2.0
    #: deterministic jitter: each retry deadline is stretched by up to
    #: this fraction, drawn from the client's own named RNG stream, so
    #: retries from many clients do not synchronise
    retry_jitter: float = 0.1
    #: re-sends allowed per operation before the client abandons it, or
    #: None for unlimited (an abandoned op quarantines its window slot
    #: until a late response arrives, so slot reuse stays safe)
    retry_budget: Optional[int] = None
    #: adapt the retry timeout to observed response times (Jacobson/
    #: Karels: srtt + 4 * rttvar, floored at min_retry_timeout_ns);
    #: retry_timeout_ns then only seeds the estimator
    adaptive_retry: bool = False
    #: floor for the adaptive retry timeout
    min_retry_timeout_ns: float = 5_000.0
    #: replicas per partition (1 = classic unreplicated HERD; k > 1
    #: adds k-1 backups on dedicated replica machines, see docs/HA.md)
    replication_factor: int = 1
    #: how many backups must apply a PUT before the primary acks the
    #: client: "all" live backups, or a "majority" of the replica group
    ack_policy: str = "all"
    #: lease duration in simulated microseconds; a primary that the
    #: monitor has not heard from for this long is declared dead
    lease_us: float = 10.0
    #: heartbeat period in simulated microseconds (must leave room for
    #: several heartbeats per lease, or one dropped UD SEND would
    #: trigger a spurious failover)
    heartbeat_us: float = 2.0
    #: elastic mode: how many of the ``n_server_processes`` partitions
    #: initially own key ranges (the rest are spares that join later
    #: via :mod:`repro.elastic`).  None keeps the classic static modulo
    #: mapping; an integer switches routing to an epoch-versioned shard
    #: map distributed over the CONFIG channel (see docs/ELASTICITY.md)
    n_active_partitions: Optional[int] = None
    #: overload protection (:class:`repro.qos.QosConfig`): admission
    #: control, tenant quotas, RETRY_AFTER nacks.  None (the default)
    #: disables the layer entirely — wire format, event schedule, and
    #: fingerprints stay byte-identical to the pre-QoS build
    qos: Optional["QosConfig"] = None

    def __post_init__(self) -> None:
        if self.n_server_processes < 1:
            raise ValueError("need at least one server process")
        if not 1 <= self.window <= 255:
            raise ValueError(
                "window must be within [1, 255] (the response's slot-id "
                "byte identifies the window slot); got %r" % (self.window,)
            )
        if self.slot_bytes < 32:
            raise ValueError("slots must hold LEN + keyhash + some value")
        if self.index_entries < 1:
            raise ValueError("index_entries must be >= 1; got %r" % (self.index_entries,))
        if self.log_bytes < 1:
            raise ValueError("log_bytes must be >= 1; got %r" % (self.log_bytes,))
        if self.noop_after_polls < 1:
            raise ValueError(
                "noop_after_polls must be >= 1; got %r" % (self.noop_after_polls,)
            )
        if self.pipeline_depth < 1:
            raise ValueError(
                "pipeline_depth must be >= 1; got %r" % (self.pipeline_depth,)
            )
        if self.request_transport not in ("UC", "DC"):
            raise ValueError("request transport must be UC or DC")
        if self.retry_timeout_ns is not None and not self.retry_timeout_ns > 0:
            raise ValueError(
                "retry_timeout_ns must be > 0 (or None to disable retries); "
                "got %r" % (self.retry_timeout_ns,)
            )
        if self.retry_backoff < 1.0:
            raise ValueError(
                "retry_backoff must be >= 1 (a shrinking timeout would "
                "retry before the previous attempt could answer); got %r"
                % (self.retry_backoff,)
            )
        if not 0.0 <= self.retry_jitter <= 1.0:
            raise ValueError(
                "retry_jitter is a fraction within [0, 1]; got %r"
                % (self.retry_jitter,)
            )
        if self.retry_budget is not None and self.retry_budget < 1:
            raise ValueError(
                "retry_budget must be >= 1 (or None for unlimited); got %r"
                % (self.retry_budget,)
            )
        if not self.min_retry_timeout_ns > 0:
            raise ValueError(
                "min_retry_timeout_ns must be > 0; got %r"
                % (self.min_retry_timeout_ns,)
            )
        if not 1 <= self.replication_factor <= 8:
            raise ValueError(
                "replication_factor must be within [1, 8]; got %r"
                % (self.replication_factor,)
            )
        if self.ack_policy not in ("all", "majority"):
            raise ValueError(
                "ack_policy must be 'all' or 'majority'; got %r"
                % (self.ack_policy,)
            )
        if self.replication_factor > 1:
            if self.retry_timeout_ns is None:
                raise ValueError(
                    "replication needs application-level retries "
                    "(retry_timeout_ns): failover replays in-flight "
                    "requests through the retry path"
                )
            if self.request_transport != "UC":
                raise ValueError(
                    "replication currently supports the UC request "
                    "transport only; got %r" % (self.request_transport,)
                )
        if not self.lease_us > 0:
            raise ValueError("lease_us must be > 0; got %r" % (self.lease_us,))
        if not self.heartbeat_us > 0:
            raise ValueError(
                "heartbeat_us must be > 0; got %r" % (self.heartbeat_us,)
            )
        if self.lease_us <= 2 * self.heartbeat_us:
            raise ValueError(
                "lease_us must exceed two heartbeat periods, or a single "
                "dropped heartbeat triggers a spurious failover; got "
                "lease_us=%r heartbeat_us=%r" % (self.lease_us, self.heartbeat_us)
            )
        if self.n_active_partitions is not None:
            if not 1 <= self.n_active_partitions <= self.n_server_processes:
                raise ValueError(
                    "n_active_partitions must be within [1, "
                    "n_server_processes]; got %r with %d server processes"
                    % (self.n_active_partitions, self.n_server_processes)
                )
            if self.replication_factor < 2:
                raise ValueError(
                    "elastic mode (n_active_partitions) requires "
                    "replication_factor >= 2: live migration streams "
                    "records over the repro.ha replication mesh"
                )
        if self.qos is not None:
            from repro.qos.config import QosConfig

            if not isinstance(self.qos, QosConfig):
                raise ValueError(
                    "qos must be a repro.qos.QosConfig; got %r" % (self.qos,)
                )
            if self.retry_timeout_ns is None:
                raise ValueError(
                    "qos requires application-level retries "
                    "(retry_timeout_ns): RETRY_AFTER nacks re-send "
                    "through the retry path"
                )
            if self.replication_factor > 1:
                raise ValueError(
                    "qos currently supports unreplicated clusters only "
                    "(the HA response framing already claims the status "
                    "byte's routing)"
                )
            if self.request_transport != "UC":
                raise ValueError(
                    "qos currently supports the UC request transport "
                    "only; got %r" % (self.request_transport,)
                )

    def region_bytes(self, n_clients: int) -> int:
        """Size of the request region for ``n_clients`` client processes."""
        return self.n_server_processes * n_clients * self.window * self.slot_bytes


def partition_of(keyhash: bytes, n_partitions: int) -> int:
    """Which server process owns ``keyhash`` (MICA-style EREW sharding).

    Keyhashes are already uniform, so plain modulo arithmetic over the
    first 8 bytes spreads keys evenly — this is HERD's analogue of
    MICA's Flow Director steering (Section 4.1).
    """
    if n_partitions < 1:
        raise ValueError(
            "n_partitions must be >= 1; got %r" % (n_partitions,)
        )
    return int.from_bytes(keyhash[:8], "little") % n_partitions


def route_key(keyhash: bytes, n_partitions: int, shard_map=None) -> int:
    """The single keyhash->partition routing helper.

    Every router — client issue path, cluster warm-load, chaos
    final-state audit — goes through here, so static and elastic
    deployments cannot disagree about ownership.  With ``shard_map``
    (a :class:`repro.elastic.ShardMap`) the map's range table decides;
    without one this is the classic static modulo mapping.
    """
    if shard_map is not None:
        return shard_map.owner_of(keyhash)
    return partition_of(keyhash, n_partitions)
