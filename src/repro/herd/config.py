"""HERD configuration and key partitioning."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class HerdConfig:
    """Deployment parameters (defaults follow Section 5.1).

    The request region is ``NS * NC * W`` KB; with the paper's NC = 200,
    NS = 16, W = 2 that is ~6 MB and fits in the server's L3 cache.
    """

    #: NS: server processes, each pinned to one core with its own
    #: MICA partition (EREW) and one UD QP for responses
    n_server_processes: int = 6
    #: W: per-client window — outstanding requests a client may have
    #: at *each* server process (also the client's global window)
    window: int = 4
    #: request slot size; the largest key-value item is 1 KB
    slot_bytes: int = 1024
    #: MICA index entries per server process (the paper uses 64 Mi;
    #: scaled down by default to keep simulations light)
    index_entries: int = 2 ** 16
    #: MICA circular log bytes per server process (paper: 4 GB)
    log_bytes: int = 1 << 22
    #: consecutive empty poll iterations before a no-op flushes the
    #: request pipeline (Section 4.1.1)
    noop_after_polls: int = 100
    #: request pipeline depth = MICA's max random accesses per op
    pipeline_depth: int = 2
    #: enable the prefetch pipeline (Figure 7's ablation switch)
    prefetch: bool = True
    #: transport carrying request WRITEs: "UC" (the paper's design) or
    #: "DC" (the Connect-IB Dynamically Connected extension the paper
    #: expects to lift the ~260-client scalability limit, Section 5.5)
    request_transport: str = "UC"
    #: application-level retry timeout in ns, or None to disable.
    #: UC/UD never retransmit (Section 2.2.3): HERD "sacrifices
    #: transport-level retransmission ... at the cost of rare
    #: application-level retries".  Set this well above the p99
    #: latency — a premature retry desynchronises response matching.
    retry_timeout_ns: float = None

    def __post_init__(self) -> None:
        if self.n_server_processes < 1:
            raise ValueError("need at least one server process")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.slot_bytes < 32:
            raise ValueError("slots must hold LEN + keyhash + some value")
        if self.request_transport not in ("UC", "DC"):
            raise ValueError("request transport must be UC or DC")

    def region_bytes(self, n_clients: int) -> int:
        """Size of the request region for ``n_clients`` client processes."""
        return self.n_server_processes * n_clients * self.window * self.slot_bytes


def partition_of(keyhash: bytes, n_partitions: int) -> int:
    """Which server process owns ``keyhash`` (MICA-style EREW sharding).

    Keyhashes are already uniform, so plain modulo arithmetic over the
    first 8 bytes spreads keys evenly — this is HERD's analogue of
    MICA's Flow Director steering (Section 4.1).
    """
    return int.from_bytes(keyhash[:8], "little") % n_partitions
