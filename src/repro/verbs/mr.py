"""Registered memory regions: real bytes behind remote addresses.

A :class:`MemoryRegion` owns a ``bytearray``; RDMA WRITEs copy real
bytes into it and READs copy real bytes out, with rkey and bounds
checks.  Regions are registered with a per-machine :class:`MrTable`
that assigns non-overlapping virtual addresses (page aligned, like a
real registration) and resolves incoming ``(raddr, rkey)`` pairs.
"""

from __future__ import annotations

from typing import Dict

PAGE = 4096


class MrAccessError(Exception):
    """Bad rkey, or an access outside the region's bounds."""


class MemoryRegion:
    """A registered buffer addressable by local offset or remote addr."""

    __slots__ = ("addr", "length", "lkey", "rkey", "buf", "on_write")

    def __init__(self, addr: int, length: int, lkey: int, rkey: int) -> None:
        self.addr = addr
        self.length = length
        self.lkey = lkey
        self.rkey = rkey
        self.buf = bytearray(length)
        #: optional observer fn(offset, length) fired when an *incoming
        #: RDMA WRITE* lands (after its DMA); used for polled regions
        #: such as HERD's request region and FaRM's circular buffers.
        self.on_write = None

    # -- local access (by offset) -----------------------------------------

    def write(self, offset: int, data: bytes) -> None:
        """Copy ``data`` into the region at ``offset``."""
        if offset < 0 or offset + len(data) > self.length:
            raise MrAccessError(
                "write [%d, %d) outside region of %d bytes"
                % (offset, offset + len(data), self.length)
            )
        self.buf[offset : offset + len(data)] = data

    def read(self, offset: int, length: int) -> bytes:
        """Copy ``length`` bytes out of the region at ``offset``."""
        if offset < 0 or length < 0 or offset + length > self.length:
            raise MrAccessError(
                "read [%d, %d) outside region of %d bytes"
                % (offset, offset + length, self.length)
            )
        return bytes(self.buf[offset : offset + length])

    # -- remote access (by virtual address) --------------------------------

    def offset_of(self, raddr: int) -> int:
        """Translate a remote virtual address to a region offset."""
        offset = raddr - self.addr
        if offset < 0 or offset >= self.length:
            raise MrAccessError(
                "address %#x outside region [%#x, %#x)"
                % (raddr, self.addr, self.addr + self.length)
            )
        return offset


class MrTable:
    """One machine's registration table (rkey -> region)."""

    def __init__(self) -> None:
        self._by_rkey: Dict[int, MemoryRegion] = {}
        self._next_addr = PAGE  # never hand out address 0
        self._next_key = 1

    def register(self, length: int) -> MemoryRegion:
        """Register a fresh buffer of ``length`` bytes."""
        if length <= 0:
            raise ValueError("region length must be positive")
        lkey = self._next_key
        rkey = self._next_key
        self._next_key += 1
        mr = MemoryRegion(self._next_addr, length, lkey, rkey)
        # Page-align the next registration, like a real pin + map.
        self._next_addr += ((length + PAGE - 1) // PAGE) * PAGE
        self._by_rkey[rkey] = mr
        return mr

    def resolve(self, raddr: int, rkey: int, length: int) -> MemoryRegion:
        """Find the region for an incoming RDMA access; validate bounds."""
        mr = self._by_rkey.get(rkey)
        if mr is None:
            raise MrAccessError("unknown rkey %d" % rkey)
        offset = mr.offset_of(raddr)
        if offset + length > mr.length:
            raise MrAccessError(
                "access [%#x, %#x) overruns region" % (raddr, raddr + length)
            )
        return mr
