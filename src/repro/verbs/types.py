"""Verb, transport, and completion types, plus Table 1's capability matrix."""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class Transport(enum.Enum):
    """RDMA transport types (Section 2.2.3).

    DC (Dynamically Connected) is the Connect-IB extension the paper
    points to as the future fix for connection scalability (Section
    5.5): reliable, supports all verbs, yet addresses any remote DC
    target per work request — so a server needs one DC target instead
    of one connected QP per client.
    """

    RC = "RC"  # Reliable Connection: acknowledged, connected
    UC = "UC"  # Unreliable Connection: connected, no ACK/NAK traffic
    UD = "UD"  # Unreliable Datagram: unconnected, one-to-many
    DC = "DC"  # Dynamically Connected: reliable, unconnected (Connect-IB)

    @property
    def connected(self) -> bool:
        return self in (Transport.RC, Transport.UC)

    @property
    def reliable(self) -> bool:
        return self in (Transport.RC, Transport.DC)


class Opcode(enum.Enum):
    """Verb opcodes relevant to this work (Section 2.2.2).

    The two masked atomics are the IB-spec remote read-modify-writes:
    both operate on one 8-byte-aligned quadword and return the
    *original* value to a local sink buffer.  Only the reliable
    transports carry them (the responder must be able to replay a lost
    response without re-executing the side effect).
    """

    SEND = "SEND"
    RECV = "RECV"
    WRITE = "WRITE"
    READ = "READ"
    ATOMIC_CS = "ATOMIC_CMP_AND_SWP"
    ATOMIC_FA = "ATOMIC_FETCH_ADD"

    @property
    def memory_semantics(self) -> bool:
        """True for the one-sided RDMA verbs (READ, WRITE, atomics)."""
        return self not in (Opcode.SEND, Opcode.RECV)

    @property
    def channel_semantics(self) -> bool:
        """True for the two-sided messaging verbs (SEND and RECV)."""
        return self in (Opcode.SEND, Opcode.RECV)

    @property
    def atomic(self) -> bool:
        """True for the remote read-modify-write verbs."""
        return self in (Opcode.ATOMIC_CS, Opcode.ATOMIC_FA)


#: atomics always operate on one quadword
ATOMIC_BYTES = 8

#: Table 1: operations supported by each transport type.  UC does not
#: support READs, and UD does not support RDMA at all.  Atomics need a
#: reliable responder, so only RC and DC carry them.  (DC is this
#: library's Connect-IB extension, not part of the paper's Table 1.)
TRANSPORT_CAPABILITIES = {
    Transport.RC: frozenset(
        {
            Opcode.SEND,
            Opcode.RECV,
            Opcode.WRITE,
            Opcode.READ,
            Opcode.ATOMIC_CS,
            Opcode.ATOMIC_FA,
        }
    ),
    Transport.UC: frozenset({Opcode.SEND, Opcode.RECV, Opcode.WRITE}),
    Transport.UD: frozenset({Opcode.SEND, Opcode.RECV}),
    Transport.DC: frozenset(
        {
            Opcode.SEND,
            Opcode.RECV,
            Opcode.WRITE,
            Opcode.READ,
            Opcode.ATOMIC_CS,
            Opcode.ATOMIC_FA,
        }
    ),
}


def transport_supports(transport: Transport, opcode: Opcode) -> bool:
    """Whether ``transport`` can carry ``opcode`` (Table 1)."""
    return opcode in TRANSPORT_CAPABILITIES[transport]


class VerbError(Exception):
    """An invalid verb posting (unsupported combination, bad sizes...)."""


class CqeStatus(enum.Enum):
    SUCCESS = "SUCCESS"
    LOCAL_ERROR = "LOCAL_ERROR"
    REMOTE_ACCESS_ERROR = "REMOTE_ACCESS_ERROR"
    #: the WR was flushed because its QP had transitioned to the error
    #: state (IBV_WC_WR_FLUSH_ERR)
    FLUSH_ERROR = "FLUSH_ERROR"


class QpState(enum.Enum):
    """Queue-pair state, reduced to the two states the model needs.

    Real QPs walk RESET -> INIT -> RTR -> RTS; this model creates QPs
    ready to send.  A fault (or ``transition_to_error``) moves the QP
    to ERROR: posted sends are flushed and inbound packets addressed to
    it are discarded until the application re-arms it with
    :meth:`~repro.verbs.qp.QueuePair.recover`.
    """

    RTS = "RTS"
    ERROR = "ERROR"


class Cqe:
    """A completion queue entry.

    A plain ``__slots__`` class (not a dataclass): the verbs datapath
    allocates one per signaled WQE and one per delivered message, and
    the dataclass ``__init__`` indirection showed up in the meta-engine
    profiles (docs/ENGINE.md).
    """

    __slots__ = ("wr_id", "opcode", "status", "byte_len", "src", "qpn", "timestamp")

    def __init__(
        self,
        wr_id: int,
        opcode: Opcode,
        status: CqeStatus = CqeStatus.SUCCESS,
        byte_len: int = 0,
        src: Optional[Tuple[str, int]] = None,
        qpn: int = 0,
        timestamp: float = 0.0,
    ) -> None:
        self.wr_id = wr_id
        self.opcode = opcode
        self.status = status
        self.byte_len = byte_len
        #: for RECV completions: the sender's (machine, qpn) address
        self.src = src
        #: the local QP this completion belongs to (ibv_wc.qp_num) —
        #: needed when several QPs share one CQ
        self.qpn = qpn
        #: simulated time the CQE was pushed to the CQ
        self.timestamp = timestamp

    def __repr__(self) -> str:
        return "Cqe(wr_id=%r, opcode=%r, status=%r, byte_len=%r, qpn=%r)" % (
            self.wr_id,
            self.opcode,
            self.status,
            self.byte_len,
            self.qpn,
        )


class WorkRequest:
    """A send-queue work request (WQE before it reaches the NIC).

    Use the class-method constructors — they keep the combinations that
    make sense on real hardware and reject the rest early.

    A plain ``__slots__`` class for the same reason as :class:`Cqe`;
    ``_acked`` and ``_psn`` are reserved for the device's
    reliable-transport bookkeeping and left unset until first use.
    """

    __slots__ = (
        "opcode",
        "wr_id",
        "payload",
        "local",
        "raddr",
        "rkey",
        "inline",
        "signaled",
        "ah",
        "context",
        "on_fetched",
        "compare_add",
        "swap",
        "_acked",
        "_psn",
    )

    def __init__(
        self,
        opcode: Opcode,
        wr_id: int = 0,
        payload: Optional[bytes] = None,
        local: Optional[Tuple[object, int, int]] = None,
        raddr: int = 0,
        rkey: int = 0,
        inline: bool = False,
        signaled: bool = True,
        ah: Optional[Tuple[str, int]] = None,
        context: object = None,
        on_fetched: Optional[object] = None,
        compare_add: int = 0,
        swap: int = 0,
    ) -> None:
        self.opcode = opcode
        self.wr_id = wr_id
        #: immediate payload bytes (inline) or None
        self.payload = payload
        #: local buffer (mr, offset, length) for non-inline sends / READ sink
        self.local = local
        #: remote address + rkey for RDMA verbs
        self.raddr = raddr
        self.rkey = rkey
        self.inline = inline
        self.signaled = signaled
        #: UD address handle: (machine_name, qpn)
        self.ah = ah
        #: bookkeeping the application may attach (e.g. timestamps)
        self.context = context
        #: called once the NIC's DMA read has snapshotted a non-inlined
        #: payload out of host memory — from then on the local buffer may
        #: be reused (true zero-copy semantics; HERD's staging buffer
        #: recycles extents off this)
        self.on_fetched = on_fetched
        #: atomic operands (ibv_wr naming): the compare value for
        #: ATOMIC_CMP_AND_SWP or the addend for ATOMIC_FETCH_ADD ...
        self.compare_add = compare_add
        #: ... and the swap value for ATOMIC_CMP_AND_SWP (unused by FA)
        self.swap = swap

    def __repr__(self) -> str:
        return "WorkRequest(%r, wr_id=%r, inline=%r, signaled=%r)" % (
            self.opcode,
            self.wr_id,
            self.inline,
            self.signaled,
        )

    # -- constructors -----------------------------------------------------

    @classmethod
    def write(
        cls,
        raddr: int,
        rkey: int,
        payload: Optional[bytes] = None,
        local: Optional[Tuple[object, int, int]] = None,
        inline: bool = False,
        signaled: bool = True,
        wr_id: int = 0,
        ah: Optional[Tuple[str, int]] = None,
        context: object = None,
    ) -> "WorkRequest":
        """An RDMA WRITE of ``payload`` (inline) or of ``local`` bytes.

        ``ah`` addresses the remote DC target when the QP is
        Dynamically Connected; connected transports must leave it None.
        """
        if inline and payload is None:
            raise VerbError("inline WRITE requires an immediate payload")
        if payload is None and local is None:
            raise VerbError("WRITE requires payload or local buffer")
        return cls(
            Opcode.WRITE,
            wr_id=wr_id,
            payload=payload,
            local=local,
            raddr=raddr,
            rkey=rkey,
            inline=inline,
            signaled=signaled,
            ah=ah,
            context=context,
        )

    @classmethod
    def read(
        cls,
        raddr: int,
        rkey: int,
        local: Tuple[object, int, int],
        signaled: bool = True,
        wr_id: int = 0,
        context: object = None,
    ) -> "WorkRequest":
        """An RDMA READ of ``local[2]`` bytes from the remote address."""
        return cls(
            Opcode.READ,
            wr_id=wr_id,
            local=local,
            raddr=raddr,
            rkey=rkey,
            signaled=signaled,
            context=context,
        )

    @classmethod
    def send(
        cls,
        payload: Optional[bytes] = None,
        local: Optional[Tuple[object, int, int]] = None,
        inline: bool = False,
        signaled: bool = True,
        ah: Optional[Tuple[str, int]] = None,
        wr_id: int = 0,
        context: object = None,
    ) -> "WorkRequest":
        """A SEND message (requires a pre-posted RECV at the responder)."""
        if inline and payload is None:
            raise VerbError("inline SEND requires an immediate payload")
        if payload is None and local is None:
            raise VerbError("SEND requires payload or local buffer")
        return cls(
            Opcode.SEND,
            wr_id=wr_id,
            payload=payload,
            local=local,
            inline=inline,
            signaled=signaled,
            ah=ah,
            context=context,
        )

    @classmethod
    def cmp_swap(
        cls,
        raddr: int,
        rkey: int,
        compare: int,
        swap: int,
        local: Tuple[object, int, int],
        signaled: bool = True,
        wr_id: int = 0,
        ah: Optional[Tuple[str, int]] = None,
        context: object = None,
    ) -> "WorkRequest":
        """An ATOMIC_CMP_AND_SWP of the quadword at ``raddr``.

        If the remote quadword equals ``compare`` it is replaced with
        ``swap``; either way the *original* value is returned into the
        8-byte ``local`` sink buffer.
        """
        _validate_atomic_args(raddr, local)
        return cls(
            Opcode.ATOMIC_CS,
            wr_id=wr_id,
            local=local,
            raddr=raddr,
            rkey=rkey,
            signaled=signaled,
            ah=ah,
            context=context,
            compare_add=compare,
            swap=swap,
        )

    @classmethod
    def fetch_add(
        cls,
        raddr: int,
        rkey: int,
        add: int,
        local: Tuple[object, int, int],
        signaled: bool = True,
        wr_id: int = 0,
        ah: Optional[Tuple[str, int]] = None,
        context: object = None,
    ) -> "WorkRequest":
        """An ATOMIC_FETCH_ADD of ``add`` to the quadword at ``raddr``.

        The addition wraps at 2**64; the original value is returned
        into the 8-byte ``local`` sink buffer.
        """
        _validate_atomic_args(raddr, local)
        return cls(
            Opcode.ATOMIC_FA,
            wr_id=wr_id,
            local=local,
            raddr=raddr,
            rkey=rkey,
            signaled=signaled,
            ah=ah,
            context=context,
            compare_add=add,
        )

    @property
    def length(self) -> int:
        """Payload length in bytes."""
        if self.payload is not None:
            return len(self.payload)
        if self.local is not None:
            return self.local[2]
        return 0


def _validate_atomic_args(raddr: int, local: Optional[Tuple[object, int, int]]) -> None:
    """Shared operand checks for the atomic constructors (IB spec)."""
    if local is None:
        raise VerbError("atomics require a local sink for the original value")
    if local[2] != ATOMIC_BYTES:
        raise VerbError(
            "atomic sink must be exactly %d bytes; got %d" % (ATOMIC_BYTES, local[2])
        )
    if raddr % ATOMIC_BYTES:
        raise VerbError(
            "atomic target address %#x is not %d-byte aligned" % (raddr, ATOMIC_BYTES)
        )


class RecvRequest:
    """A receive-queue work request: where an incoming SEND lands."""

    __slots__ = ("wr_id", "local", "context")

    def __init__(
        self,
        wr_id: int,
        local: Tuple[object, int, int],
        context: object = None,
    ) -> None:
        self.wr_id = wr_id
        #: destination buffer (mr, offset, capacity)
        self.local = local
        self.context = context

    def __repr__(self) -> str:
        return "RecvRequest(wr_id=%r)" % (self.wr_id,)
