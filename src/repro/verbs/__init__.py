"""RDMA verbs over the simulated fabric.

This package implements the userspace verbs interface the paper builds
on (Section 2.2): queue pairs over RC/UC/UD transports, READ / WRITE /
SEND / RECV work requests, completion queues with selective signaling,
payload inlining, and registered memory regions holding real bytes.

The *protocol* lives here; the *time* comes from :mod:`repro.hw` — each
step of the datapath (PIO of the WQE, engine processing, DMA, wire)
occupies the corresponding hardware server.

Typical use::

    sim = Simulator()
    fabric = Fabric(sim, APT)
    server = RdmaDevice(Machine(sim, fabric, "server"))
    client = RdmaDevice(Machine(sim, fabric, "client"))

    mr = server.register_memory(4096)
    sqp, cqp = connect_pair(server, client, Transport.UC)

    wr = WorkRequest.write(raddr=mr.addr, rkey=mr.rkey,
                           payload=b"hello", inline=True, signaled=False)
    client.post_send(cqp, wr)
"""

from repro.verbs.cq import CompletionQueue
from repro.verbs.device import RdmaDevice, connect_pair
from repro.verbs.mr import MemoryRegion
from repro.verbs.qp import QueuePair
from repro.verbs.types import (
    Cqe,
    CqeStatus,
    Opcode,
    QpState,
    RecvRequest,
    Transport,
    VerbError,
    WorkRequest,
    transport_supports,
)

__all__ = [
    "CompletionQueue",
    "Cqe",
    "CqeStatus",
    "MemoryRegion",
    "Opcode",
    "QpState",
    "QueuePair",
    "RdmaDevice",
    "RecvRequest",
    "Transport",
    "VerbError",
    "WorkRequest",
    "connect_pair",
    "transport_supports",
]
