"""Completion queues.

The NIC pushes completion events into a CQ with a DMA write (that cost
is charged by the device datapath); applications either block on
:meth:`CompletionQueue.pop` inside a simulator process or drain with
:meth:`poll` in a spin loop.
"""

from __future__ import annotations

from typing import List, Optional

from repro.sim import Event, Simulator, Store
from repro.verbs.types import Cqe


class CompletionQueue:
    """A FIFO of completion entries."""

    def __init__(self, sim: Simulator, name: str = "cq") -> None:
        self.sim = sim
        self.name = name
        self._store = Store(sim, name)
        self.pushed = 0

    def push(self, cqe: Cqe) -> None:
        """Called by the device when a completion lands (post-DMA)."""
        cqe.timestamp = self.sim.now
        self.pushed += 1
        self._store.put(cqe)

    def pop(self) -> Event:
        """Event firing with the next CQE (blocks a sim process)."""
        return self._store.get()

    def poll(self, max_entries: int = 16) -> List[Cqe]:
        """Drain up to ``max_entries`` CQEs without waiting."""
        out: List[Cqe] = []
        while len(out) < max_entries:
            cqe = self._store.try_get()
            if cqe is None:
                break
            out.append(cqe)
        return out

    def try_pop(self) -> Optional[Cqe]:
        """Pop a single CQE if one is pending."""
        return self._store.try_get()

    def __len__(self) -> int:
        return len(self._store)
