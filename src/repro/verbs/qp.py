"""Queue pairs.

A queue pair is a send queue + receive queue bound to one transport
type.  Connected transports (RC/UC) talk to exactly one remote QP;
a UD QP addresses a different remote QP per work request via an
address handle.  The datapath that moves a work request through the
hardware lives in :mod:`repro.verbs.device`; this class holds QP state:
the peer binding, pre-posted RECVs, RC's unacknowledged-send FIFO, and
the outstanding-READ credit limit (16 on ConnectX-3, Section 3.2.2).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from repro.verbs.cq import CompletionQueue
from repro.verbs.types import QpState, RecvRequest, Transport, VerbError, WorkRequest


class QueuePair:
    """One side of an RDMA connection (or a UD endpoint)."""

    def __init__(
        self,
        device: "RdmaDevice",  # noqa: F821  (forward ref, avoids import cycle)
        qpn: int,
        transport: Transport,
        send_cq: CompletionQueue,
        recv_cq: CompletionQueue,
        max_outstanding_reads: int,
    ) -> None:
        self.device = device
        self.qpn = qpn
        self.transport = transport
        self.send_cq = send_cq
        self.recv_cq = recv_cq
        #: (machine_name, qpn) of the peer, for connected transports
        self.peer: Optional[Tuple[str, int]] = None
        self.recv_queue: Deque[RecvRequest] = deque()
        #: RC: signaled sends awaiting an ACK, in order
        self.unacked: Deque[WorkRequest] = deque()
        #: READ flow control — atomics share these slots: ConnectX
        #: NICs account CmpSwap/FetchAdd against the same
        #: outstanding-RDMA-read limit (both are non-posted requests
        #: the requester must hold state for)
        self.read_credits = max_outstanding_reads
        self.pending_reads: Deque[WorkRequest] = deque()
        #: per-QP packet sequence number stamped on atomic requests;
        #: the responder's replay cache dedups retransmits by it
        self.atomic_psn = 0
        #: per-QP packet sequence number stamped on WRITE/SEND request
        #: packets when the device enforces RC ordering
        #: (:attr:`RdmaDevice.enforce_rc_ordering`); the responder's
        #: expected-PSN check and the requester's cumulative ACKs key
        #: off it
        self.send_psn = 0
        #: transmit-ordering gate: RDMA executes a QP's WQEs in post
        #: order, so a payload DMA fetch must not let later (e.g.
        #: inlined) WQEs overtake this one onto the wire
        self.send_gate = None
        #: RTS normally; ERROR after a fault until :meth:`recover`
        self.state = QpState.RTS
        # statistics
        self.sends_posted = 0
        self.recvs_posted = 0
        self.rnr_drops = 0  # SENDs that arrived with no RECV posted
        self.flushed_wrs = 0  # sends posted while in the ERROR state

    def connect(self, machine_name: str, qpn: int) -> None:
        """Bind this connected QP to its one peer."""
        if not self.transport.connected:
            raise VerbError(
                "%s queue pairs are unconnected" % self.transport.value
            )
        if self.peer is not None:
            raise VerbError("queue pair already connected")
        self.peer = (machine_name, qpn)

    def destination_for(self, wr: WorkRequest) -> Tuple[str, int]:
        """Where this work request goes: the peer, or the WR's AH."""
        if not self.transport.connected:
            if wr.ah is None:
                raise VerbError(
                    "%s verbs require an address handle" % self.transport.value
                )
            return wr.ah
        if self.peer is None:
            raise VerbError("queue pair is not connected")
        if wr.ah is not None:
            raise VerbError("address handles are only for unconnected transports")
        return self.peer

    # -- error state --------------------------------------------------------

    def transition_to_error(self) -> None:
        """Move the QP to the ERROR state (fault injection).

        From here every posted send is flushed (a FLUSH_ERROR CQE when
        signaled) and inbound packets addressed to this QP are
        discarded.  Pre-posted RECVs are kept: this models the common
        recovery path where the application re-arms the same QP rather
        than tearing it down.
        """
        self.state = QpState.ERROR

    def recover(self) -> None:
        """Re-arm an ERROR QP (modelling the app's RESET->RTS walk)."""
        self.state = QpState.RTS

    # -- READ credits -------------------------------------------------------

    def take_read_credit(self) -> bool:
        """Consume one outstanding-READ slot; False if none available."""
        if self.read_credits <= 0:
            return False
        self.read_credits -= 1
        return True

    def return_read_credit(self) -> Optional[WorkRequest]:
        """Release a READ slot; returns a queued READ to issue, if any."""
        self.read_credits += 1
        if self.pending_reads:
            return self.pending_reads.popleft()
        return None
