"""Wire packets exchanged between RNICs.

Packets carry real payload bytes plus the addressing metadata a BTH /
RETH would.  Requester-side bookkeeping state (the originating work
request) rides along as a Python reference — it never influences the
responder, which acts only on the wire fields.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.verbs.types import Transport, WorkRequest


class PacketKind(enum.Enum):
    WRITE = "WRITE"              # RDMA WRITE data
    SEND = "SEND"                # SEND message data
    READ_REQ = "READ_REQ"        # RDMA READ request
    READ_RESP = "READ_RESP"      # RDMA READ response data
    ACK = "ACK"                  # RC acknowledgement
    ATOMIC_REQ = "ATOMIC_REQ"    # CmpSwap / FetchAdd request (operands)
    ATOMIC_RESP = "ATOMIC_RESP"  # atomic response (original value)


class Packet:
    """One message on the fabric (segmentation is priced, not split)."""

    __slots__ = (
        "kind",
        "transport",
        "src_machine",
        "src_qpn",
        "dst_machine",
        "dst_qpn",
        "payload",
        "raddr",
        "rkey",
        "length",
        "psn",
        "wr",
        "corrupt",
    )

    def __init__(
        self,
        kind: PacketKind,
        transport: Transport,
        src_machine: str,
        src_qpn: int,
        dst_machine: str,
        dst_qpn: int,
        payload: Optional[bytes] = None,
        raddr: int = 0,
        rkey: int = 0,
        length: int = 0,
        psn: int = 0,
        wr: Optional[WorkRequest] = None,
    ) -> None:
        self.kind = kind
        self.transport = transport
        self.src_machine = src_machine
        self.src_qpn = src_qpn
        self.dst_machine = dst_machine
        self.dst_qpn = dst_qpn
        self.payload = payload
        self.raddr = raddr
        self.rkey = rkey
        self.length = length
        self.psn = psn
        self.wr = wr
        #: set by the fabric's fault layer: the payload was damaged on
        #: the wire, so the receiving NIC's ICRC check will discard it
        self.corrupt = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<Packet %s %s %s:%d -> %s:%d len=%d>" % (
            self.kind.value,
            self.transport.value,
            self.src_machine,
            self.src_qpn,
            self.dst_machine,
            self.dst_qpn,
            self.length,
        )
