"""The RDMA device: the timed verbs datapath over one machine's RNIC.

Egress (posting a verb, Section 2.2.2 and Figure 1):

1. the CPU prepares the WQE (caller charges ``post_send_ns``) and rings
   the doorbell — for ConnectX-3 the doorbell carries the whole WQE, so
   the PIO cost is per write-combining cacheline of the WQE;
2. the NIC's egress engine processes the WQE (touching the QP context
   cache as the *requester*);
3. a non-inlined payload is fetched over PCIe with non-posted DMA reads
   (the bytes are snapshotted at fetch time — true zero-copy semantics);
4. the packet is serialised onto the port and crosses the fabric.

Ingress mirrors it: the engine processes the packet (touching the QP
context as the *responder*), data lands in registered memory via posted
DMA writes, completions are DMA-written to CQs, and RC generates ACKs.

Unsignaled verbs skip the completion DMA entirely — that is the
"selective signaling" optimisation the paper leans on.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Generator, Optional, Tuple

from repro.hw.machine import Machine
from repro.sim import Event
from repro.sim.engine import all_of
from repro.verbs.cq import CompletionQueue
from repro.verbs.mr import MemoryRegion, MrTable
from repro.verbs.packets import Packet, PacketKind
from repro.verbs.qp import QueuePair
from repro.verbs.types import (
    Cqe,
    CqeStatus,
    Opcode,
    QpState,
    RecvRequest,
    Transport,
    VerbError,
    WorkRequest,
    transport_supports,
)

#: Optional observers the benchmarks attach: fn(packet) after the data
#: has landed in host memory.
Hook = Callable[[Packet], None]

#: Retransmission timeout used only when the fabric injects faults.
RC_RTO_NS = 100_000.0

#: Requester-side opcode -> wire packet kind (built once; the egress
#: path previously rebuilt this dict literal per transmitted WQE).
_EGRESS_KIND = {
    Opcode.WRITE: PacketKind.WRITE,
    Opcode.SEND: PacketKind.SEND,
    Opcode.READ: PacketKind.READ_REQ,
    Opcode.ATOMIC_CS: PacketKind.ATOMIC_REQ,
    Opcode.ATOMIC_FA: PacketKind.ATOMIC_REQ,
}

#: Packet kinds processed with the *requester* QP-context role at
#: ingress (responses and ACKs come back to the original requester).
_REQUESTER_KINDS = frozenset(
    {PacketKind.READ_RESP, PacketKind.ACK, PacketKind.ATOMIC_RESP}
)

#: the remote read-modify-write opcodes
_ATOMIC_OPS = frozenset({Opcode.ATOMIC_CS, Opcode.ATOMIC_FA})

#: opcodes that are requests without a payload DMA fetch (the request
#: packet carries only addressing/operands) and that consume an
#: outstanding-read credit — the NIC holds non-posted state for them
_FETCHLESS = frozenset({Opcode.READ}) | _ATOMIC_OPS

#: atomic request wire operands: op tag, compare/add, swap
_ATOMIC_WIRE = struct.Struct("<BQQ")
_ATOMIC_CS_TAG = 0
_ATOMIC_FA_TAG = 1
_U64_MASK = (1 << 64) - 1

#: per-source-QP replay entries the responder retains (real NICs size
#: this as "responder resources"; 2x the requester's credit limit)
_ATOMIC_REPLAY_DEPTH = 32


class RdmaDevice:
    """Verbs endpoint for one machine."""

    def __init__(self, machine: Machine) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.profile = machine.profile
        self.mr_table = MrTable()
        self.qps: Dict[int, QueuePair] = {}
        self._next_qpn = 1
        machine.attach_packet_handler(self._on_packet)
        # Observers (benchmarks): called when inbound data lands.
        self.write_done_hook: Optional[Hook] = None
        self.send_done_hook: Optional[Hook] = None
        self.read_served_hook: Optional[Hook] = None
        # Fault injection (repro.faults): when set, an inbound SEND for
        # which this returns True is discarded as if no RECV were
        # posted (an RNR condition at the receiver).
        self.rnr_hook: Optional[Callable[[Packet], bool]] = None
        # Counters
        self.writes_received = 0
        self.sends_received = 0
        self.reads_served = 0
        self.acks_received = 0
        self.duplicate_acks = 0
        self.retransmits = 0
        self.icrc_drops = 0      # corrupted packets discarded at ingress
        self.qp_error_drops = 0  # packets addressed to an ERROR-state QP
        self.atomics_served = 0  # remote read-modify-writes executed here
        self.atomic_replays = 0  # duplicate atomic requests answered from cache
        self.psn_gap_drops = 0   # out-of-order reliable packets discarded
        self.psn_duplicate_drops = 0  # already-delivered packets re-acked
        #: Model the RC transport's in-order exactly-once contract on
        #: WRITE/SEND flows: sequential PSNs on request packets,
        #: responder-side expected-PSN tracking (duplicates re-acked
        #: and discarded, gaps discarded until the retransmit arrives),
        #: and cumulative PSN-matched ACKs at the requester.  Off by
        #: default: the legacy FIFO ACK matching is kept for every
        #: existing harness (their fingerprints are pinned); the
        #: nemesis turns this on for dataplanes whose correctness
        #: *relies* on RC ordering (one-sided commits bypass the CPU,
        #: so no application-level sequencing can paper over the
        #: fabric's reordering the way the HA mesh protocol does).
        self.enforce_rc_ordering = False
        #: responder expected-PSN table: (src machine, src qpn,
        #: dst qpn) -> next PSN to deliver (only consulted when
        #: enforce_rc_ordering is set)
        self._expected_psn: Dict[Tuple[str, int, int], int] = {}
        #: responder replay cache: (src machine, src qpn) -> {psn:
        #: original value}; a retransmitted atomic whose response was
        #: lost is answered from here instead of re-executing the RMW
        #: (exactly-once side effects over a lossy fabric).  An entry of
        #: None marks a request still in the locked-execution window.
        self._atomic_replay: Dict[Tuple[str, int], Dict[int, Optional[int]]] = {}
        # Observability (repro.obs): semantic verbs counters, None when
        # the simulator carries no metrics registry.
        self.metrics = getattr(self.sim, "metrics", None)
        # Ingress dispatch tables, built once per device: the profile's
        # per-kind service times and the bound handler methods.  The
        # ingress path runs once per wire packet and used to rebuild
        # both dicts per call.
        p = self.profile
        self._ingress_service = {
            PacketKind.WRITE: p.nic_ingress_write_ns,
            PacketKind.SEND: p.nic_ingress_send_ns,
            PacketKind.READ_REQ: p.nic_ingress_read_ns,
            PacketKind.READ_RESP: p.nic_ingress_resp_ns,
            PacketKind.ACK: p.nic_ingress_ack_ns,
            PacketKind.ATOMIC_REQ: p.nic_ingress_atomic_ns,
            PacketKind.ATOMIC_RESP: p.nic_ingress_resp_ns,
        }
        self._ingress_handler = {
            PacketKind.WRITE: self._handle_write,
            PacketKind.SEND: self._handle_send,
            PacketKind.READ_REQ: self._handle_read_req,
            PacketKind.READ_RESP: self._handle_read_resp,
            PacketKind.ACK: self._handle_ack,
            PacketKind.ATOMIC_REQ: self._handle_atomic_req,
            PacketKind.ATOMIC_RESP: self._handle_atomic_resp,
        }

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    def register_memory(self, length: int) -> MemoryRegion:
        """Register (pin + map) a buffer of ``length`` bytes."""
        return self.mr_table.register(length)

    def create_qp(
        self,
        transport: Transport,
        send_cq: Optional[CompletionQueue] = None,
        recv_cq: Optional[CompletionQueue] = None,
    ) -> QueuePair:
        """Create a queue pair (fresh CQs by default)."""
        qpn = self._next_qpn
        self._next_qpn += 1
        if send_cq is None:  # explicit: an empty CQ is falsy (len == 0)
            send_cq = CompletionQueue(self.sim, "%s.qp%d.scq" % (self.machine.name, qpn))
        if recv_cq is None:
            recv_cq = CompletionQueue(self.sim, "%s.qp%d.rcq" % (self.machine.name, qpn))
        qp = QueuePair(
            self,
            qpn,
            transport,
            send_cq,
            recv_cq,
            self.profile.max_outstanding_reads,
        )
        self.qps[qpn] = qp
        return qp

    # ------------------------------------------------------------------
    # Posting
    # ------------------------------------------------------------------

    def post_send(self, qp: QueuePair, wr: WorkRequest) -> Event:
        """Post a work request to the send queue.

        The returned event fires when the WQE has been handed to the
        NIC, i.e. when the CPU's PIO write of the WQE completes — the
        poster stalls for this (it is the poster's store instructions),
        so callers inside a simulated core should ``yield`` it.  The
        rest of the datapath proceeds asynchronously.
        """
        self._validate_send(qp, wr)
        if qp.state is QpState.ERROR:
            # The QP was transitioned to the error state (fault
            # injection): the WR is flushed, never reaching the wire.
            qp.flushed_wrs += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "verbs.%s.flushed_wrs" % self.machine.name
                ).inc()
            if wr.signaled:
                self._push_cqe(
                    qp.send_cq,
                    Cqe(wr.wr_id, wr.opcode, status=CqeStatus.FLUSH_ERROR),
                )
            return self.sim.timeout(0.0)
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            tracer.mark(
                "%s.cpu" % self.machine.name,
                "post_send %s%s (%d B, %s, %s)"
                % (
                    wr.opcode.value,
                    " inlined" if wr.inline else "",
                    wr.length,
                    qp.transport.value,
                    "signaled" if wr.signaled else "unsignaled",
                ),
            )
        if wr.opcode in _FETCHLESS and not qp.take_read_credit():
            # ConnectX-3 services at most 16 outstanding READs per QP
            # (atomics share the same non-posted slots); excess
            # requests wait in the driver.
            qp.pending_reads.append(wr)
            return self.sim.timeout(0.0)
        qp.sends_posted += 1
        if self.metrics is not None:
            prefix = "verbs.%s." % self.machine.name
            self.metrics.counter(
                prefix + "wqe.%s.%s" % (wr.opcode.value, qp.transport.value)
            ).inc()
            if wr.opcode not in _FETCHLESS:
                self.metrics.counter(
                    prefix + ("payload.inline" if wr.inline else "payload.dma")
                ).inc()
        pio_done = self.machine.pcie.pio_write(self._wqe_bytes(qp, wr))
        pio_done.add_callback(lambda _e: self._egress(qp, wr))
        return pio_done

    def post_send_timed(
        self, qp: QueuePair, wr: WorkRequest
    ) -> Generator[Event, None, None]:
        """``post_send`` plus the 150 ns driver cost, for app loops.

        Use as ``yield from device.post_send_timed(qp, wr)`` inside a
        simulator process.
        """
        yield self.sim.timeout(self.profile.post_send_ns)
        yield self.post_send(qp, wr)

    def post_recv(self, qp: QueuePair, rr: RecvRequest) -> None:
        """Pre-post a receive buffer (bookkeeping only).

        The CPU cost (``post_recv_ns``) and the doorbell are charged by
        :meth:`post_recv_timed`; benchmarks that batch RECV postings
        charge them explicitly.
        """
        qp.recvs_posted += 1
        qp.recv_queue.append(rr)

    def post_recv_timed(
        self, qp: QueuePair, rr: RecvRequest
    ) -> Generator[Event, None, None]:
        """``post_recv`` plus CPU cost and doorbell."""
        self.post_recv(qp, rr)
        yield self.sim.timeout(self.profile.post_recv_ns)
        yield self.machine.pcie.doorbell()

    # ------------------------------------------------------------------
    # Egress datapath
    # ------------------------------------------------------------------

    def _validate_send(self, qp: QueuePair, wr: WorkRequest) -> None:
        if wr.opcode is Opcode.RECV:
            raise VerbError("RECV is posted to the receive queue (post_recv)")
        if not transport_supports(qp.transport, wr.opcode):
            raise VerbError(
                "%s does not support %s (Table 1)"
                % (qp.transport.value, wr.opcode.value)
            )
        if wr.inline and wr.length > self.profile.max_inline:
            raise VerbError(
                "inline payload %d exceeds max_inline %d"
                % (wr.length, self.profile.max_inline)
            )
        if qp.transport is Transport.UD and wr.length > self.profile.mtu:
            raise VerbError("UD messages are limited to one MTU")
        if wr.opcode is Opcode.READ and wr.local is None:
            raise VerbError("READ requires a local sink buffer")
        if wr.opcode in _ATOMIC_OPS:
            if wr.inline:
                raise VerbError("atomics cannot be inlined")
            # re-check here so hand-built WorkRequests are caught too
            from repro.verbs.types import _validate_atomic_args

            _validate_atomic_args(wr.raddr, wr.local)
        if qp.transport.connected and qp.peer is None:
            raise VerbError("queue pair is not connected")

    def _wqe_bytes(self, qp: QueuePair, wr: WorkRequest) -> int:
        """WQE size: what the CPU pushes through write-combining PIO."""
        p = self.profile
        size = p.wqe_ctrl_bytes
        if wr.opcode.memory_semantics:
            size += p.wqe_raddr_bytes
        if wr.opcode in _ATOMIC_OPS:
            size += p.wqe_atomic_bytes
        if qp.transport is Transport.UD:
            size += p.wqe_av_bytes
        if wr.inline:
            size += p.wqe_inline_hdr_bytes + wr.length
        else:
            size += p.wqe_data_ptr_bytes
        return size

    def _egress(self, qp: QueuePair, wr: WorkRequest) -> None:
        p = self.profile
        hit = self.machine.qp_cache.access(("s", qp.qpn), requester=True)
        service = p.nic_egress_read_ns if wr.opcode in _FETCHLESS else p.nic_egress_ns
        service += self.machine.qp_cache.miss_penalty_ns(hit, requester=True)
        done = self.machine.nic_egress.serve(service)
        if wr.opcode not in _FETCHLESS and not wr.inline:
            # Fetch the payload from host memory with non-posted DMA.
            ready = self.sim.event()
            done.add_callback(lambda _e: self._fetch(qp, wr, ready))
        else:
            ready = done
        # A QP's WQEs reach the wire in post order: even though a DMA
        # fetch delays this WQE, later (e.g. inlined) WQEs must not
        # overtake it.  Chain each transmit behind its predecessor's.
        predecessor = qp.send_gate
        gate = self.sim.event()
        qp.send_gate = gate

        def fire(_e: Event) -> None:
            self._transmit_wr(qp, wr)
            gate.succeed()

        if predecessor is None:
            ready.add_callback(fire)
        else:
            all_of(self.sim, [ready, predecessor]).add_callback(fire)

    def _fetch(self, qp: QueuePair, wr: WorkRequest, ready: Event) -> None:
        transactions = self.profile.non_inline_fetch_transactions
        if qp.transport is Transport.RC:
            # Reliable transport retains WQE state for retransmission:
            # one extra non-posted round trip per send (Section 3.2.2's
            # "writes require less state maintenance ... at the PCIe
            # level" argument, applied to RC vs UC).
            transactions += 1
        fetched = self.machine.pcie.dma_read(wr.length, transactions=transactions)
        fetched.add_callback(lambda _e: ready.succeed())

    def _transmit_wr(self, qp: QueuePair, wr: WorkRequest) -> None:
        dst_machine, dst_qpn = qp.destination_for(wr)
        psn = 0
        if wr.inline or wr.opcode is Opcode.READ:
            payload = wr.payload
        elif wr.opcode in _ATOMIC_OPS:
            # The request packet carries the operands (the AtomicETH);
            # the PSN identifies it in the responder's replay cache.
            tag = _ATOMIC_CS_TAG if wr.opcode is Opcode.ATOMIC_CS else _ATOMIC_FA_TAG
            payload = _ATOMIC_WIRE.pack(
                tag, wr.compare_add & _U64_MASK, wr.swap & _U64_MASK
            )
            qp.atomic_psn += 1
            psn = qp.atomic_psn
        else:
            # Zero-copy: the bytes leave host memory at DMA-fetch time.
            mr, offset, length = wr.local
            payload = mr.read(offset, length)
            if wr.on_fetched is not None:
                wr.on_fetched()
        kind = _EGRESS_KIND[wr.opcode]
        if (
            self.enforce_rc_ordering
            and qp.transport.reliable
            and kind in (PacketKind.WRITE, PacketKind.SEND)
        ):
            # Sequential PSNs let the responder deliver in post order
            # and the requester match ACKs cumulatively (go-back-N).
            qp.send_psn += 1
            psn = qp.send_psn
            wr._psn = psn
        packet = Packet(
            kind,
            qp.transport,
            self.machine.name,
            qp.qpn,
            dst_machine,
            dst_qpn,
            payload=payload,
            raddr=wr.raddr,
            rkey=wr.rkey,
            length=wr.length,
            psn=psn,
            wr=wr,
        )
        if qp.transport.reliable and kind not in (
            PacketKind.READ_REQ,
            PacketKind.ATOMIC_REQ,
        ):
            # RC/DC track unacknowledged sends; READs and atomics
            # complete via their response instead of an ACK.  (For DC,
            # FIFO matching of ACKs across targets is sound here
            # because the fabric's propagation delay is uniform.)
            qp.unacked.append(wr)
        self._transmit(packet)
        if not qp.transport.reliable and wr.signaled:
            # UC/UD: local completion once the NIC has taken the message.
            self._push_cqe(qp.send_cq, Cqe(wr.wr_id, wr.opcode, byte_len=wr.length))
        if self.machine.fabric.lossy and qp.transport.reliable:
            self._arm_retransmit(qp, packet)

    def _transmit(self, packet: Packet) -> None:
        payload_len = packet.length if packet.kind is not PacketKind.READ_REQ else 16
        if packet.kind is PacketKind.ACK:
            payload_len = 0
        elif packet.kind is PacketKind.ATOMIC_REQ:
            payload_len = 28  # AtomicETH: raddr + rkey + two operands
        ud = packet.transport is Transport.UD
        wire = self._segmented_wire_bytes(payload_len, ud)
        self.machine.transmit(packet.dst_machine, packet, wire)

    def _segmented_wire_bytes(self, payload_len: int, ud: bool) -> int:
        """Wire bytes including one header per MTU segment."""
        p = self.profile
        segments = max(1, -(-payload_len // p.mtu))
        return payload_len + segments * (p.wire_bytes(0, ud=ud))

    # ------------------------------------------------------------------
    # RC retransmission (only armed under fault injection)
    # ------------------------------------------------------------------

    def _arm_retransmit(self, qp: QueuePair, packet: Packet) -> None:
        wr = packet.wr
        if wr is None:
            return
        # Mark the WR as outstanding; the ACK / READ_RESP clears it.
        wr._acked = False

        def check() -> None:
            if not getattr(wr, "_acked", True):
                self.retransmits += 1
                self._transmit(packet)
                self.sim.call_in(RC_RTO_NS, check)

        self.sim.call_in(RC_RTO_NS, check)

    # ------------------------------------------------------------------
    # Ingress datapath
    # ------------------------------------------------------------------

    def _on_packet(self, packet: Packet) -> None:
        p = self.profile
        if packet.corrupt:
            # The ICRC check fails on arrival: the NIC silently discards
            # the frame before touching any QP context.  The wire
            # bandwidth is already gone; charge only a header-sized
            # ingress inspection.
            served = self.machine.nic_ingress.serve(p.nic_ingress_ack_ns)

            def on_discarded(_e: Event) -> None:
                self.icrc_drops += 1
                if self.metrics is not None:
                    self.metrics.counter(
                        "verbs.%s.icrc_drops" % self.machine.name
                    ).inc()

            served.add_callback(on_discarded)
            return
        dst_qp = self.qps.get(packet.dst_qpn)
        if dst_qp is not None and dst_qp.state is QpState.ERROR:
            # Packets addressed to an error-state QP are dropped by the
            # NIC (real hardware NAKs or silently discards, depending on
            # transport; neither delivers to memory).
            self.qp_error_drops += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "verbs.%s.qp_error_drops" % self.machine.name
                ).inc()
            return
        cache = self.machine.qp_cache
        kind = packet.kind
        requester = kind in _REQUESTER_KINDS
        role_key = ("s", packet.dst_qpn) if requester else ("r", packet.dst_qpn)
        hit = cache.access(role_key, requester=requester)
        service = self._ingress_service[kind] + cache.miss_penalty_ns(
            hit, requester=requester
        )
        done = self.machine.nic_ingress.serve(service)
        handler = self._ingress_handler[kind]
        done.add_callback(lambda _e: handler(packet))

    # -- RC ordering enforcement (enforce_rc_ordering only) ------------

    def _rc_ordered(self, packet: Packet) -> bool:
        """Whether this packet participates in the enforced PSN stream.

        ``psn > 0`` excludes packets from senders that do not stamp
        sequential PSNs (the flag is per device, and PSN 0 is the
        unstamped default), so mixed clusters degrade to legacy
        delivery instead of discarding everything as duplicates.
        """
        return (
            self.enforce_rc_ordering
            and packet.transport.reliable
            and packet.psn > 0
        )

    def _psn_key(self, packet: Packet) -> Tuple[str, int, int]:
        return (packet.src_machine, packet.src_qpn, packet.dst_qpn)

    def _psn_check(self, packet: Packet) -> int:
        """-1 = already delivered, 0 = in order, +1 = gap ahead."""
        expected = self._expected_psn.get(self._psn_key(packet), 1)
        if packet.psn == expected:
            return 0
        return -1 if packet.psn < expected else 1

    def _psn_discard(self, packet: Packet, verdict: int) -> None:
        if verdict < 0:
            # Duplicate (our ACK was lost, or the fabric cloned the
            # packet): discard the side effect, re-ack our cumulative
            # progress so the requester's retransmit timer stands down.
            self.psn_duplicate_drops += 1
            self._send_ack(
                packet, psn=self._expected_psn.get(self._psn_key(packet), 1) - 1
            )
        else:
            # Gap: an earlier packet is still missing.  Real RC NAKs
            # and the requester goes back; here the per-packet
            # retransmit timers re-send everything unacked in post
            # order, so silently discarding converges the same way.
            self.psn_gap_drops += 1

    def _psn_advance(self, packet: Packet) -> None:
        self._expected_psn[self._psn_key(packet)] = packet.psn + 1

    def _handle_write(self, packet: Packet) -> None:
        if self._rc_ordered(packet):
            verdict = self._psn_check(packet)
            if verdict != 0:
                self._psn_discard(packet, verdict)
                return
            self._psn_advance(packet)
        mr = self.mr_table.resolve(packet.raddr, packet.rkey, packet.length)
        offset = mr.offset_of(packet.raddr)
        mr.write(offset, packet.payload)
        landed = self.machine.pcie.dma_write(packet.length)

        def on_landed(_e: Event) -> None:
            self.writes_received += 1
            notify = getattr(mr, "on_write", None)
            if notify is not None:
                notify(offset, packet.length)
            if self.write_done_hook is not None:
                self.write_done_hook(packet)

        landed.add_callback(on_landed)
        if packet.transport.reliable:
            self._send_ack(packet)

    def _handle_send(self, packet: Packet) -> None:
        qp = self.qps.get(packet.dst_qpn)
        if qp is None:
            raise VerbError("SEND to unknown QP %d" % packet.dst_qpn)
        ordered = self._rc_ordered(packet)
        if ordered:
            # Duplicates must be rejected *before* they consume a RECV.
            verdict = self._psn_check(packet)
            if verdict != 0:
                self._psn_discard(packet, verdict)
                return
        if self.rnr_hook is not None and self.rnr_hook(packet):
            # Injected RECV-queue exhaustion: the message is discarded
            # exactly as if the application had fallen behind on
            # replenishing RECVs (an RNR drop on these transports).
            # Under enforced ordering the PSN does not advance and no
            # ACK is sent, so the requester retries — RNR semantics.
            qp.rnr_drops += 1
            return
        if not qp.recv_queue:
            # No pre-posted RECV: the message is dropped (we forgo RNR
            # retries, as the paper's designs never let this happen).
            qp.rnr_drops += 1
            return
        if ordered:
            self._psn_advance(packet)
        rr = qp.recv_queue.popleft()
        mr, offset, capacity = rr.local
        grh = self.profile.grh_bytes if qp.transport is Transport.UD else 0
        if packet.length + grh > capacity:
            raise VerbError(
                "RECV buffer of %d bytes cannot hold %d-byte SEND"
                % (capacity, packet.length + grh)
            )
        # UD receive buffers start with a 40-byte GRH.
        mr.write(offset + grh, packet.payload)
        landed = self.machine.pcie.dma_write(packet.length + grh)

        def on_landed(_e: Event) -> None:
            self.sends_received += 1
            self._push_cqe(
                qp.recv_cq,
                Cqe(
                    rr.wr_id,
                    Opcode.RECV,
                    byte_len=packet.length,
                    src=(packet.src_machine, packet.src_qpn),
                    qpn=qp.qpn,
                ),
            )
            if self.send_done_hook is not None:
                self.send_done_hook(packet)

        landed.add_callback(on_landed)
        if packet.transport.reliable:
            self._send_ack(packet)

    def _handle_read_req(self, packet: Packet) -> None:
        mr = self.mr_table.resolve(packet.raddr, packet.rkey, packet.length)
        offset = mr.offset_of(packet.raddr)
        fetched = self.machine.pcie.dma_read(packet.length, transactions=1)

        def on_fetched(_e: Event) -> None:
            self.reads_served += 1
            if self.read_served_hook is not None:
                self.read_served_hook(packet)
            data = mr.read(offset, packet.length)
            response = Packet(
                PacketKind.READ_RESP,
                packet.transport,
                self.machine.name,
                packet.dst_qpn,
                packet.src_machine,
                packet.src_qpn,
                payload=data,
                length=packet.length,
                wr=packet.wr,
            )
            served = self.machine.nic_egress.serve(self.profile.nic_egress_ns)
            served.add_callback(lambda _e2: self._transmit(response))

        fetched.add_callback(on_fetched)

    def _handle_read_resp(self, packet: Packet) -> None:
        qp = self.qps.get(packet.dst_qpn)
        wr = packet.wr
        if qp is None or wr is None:
            raise VerbError("READ response for unknown QP/WR")
        if self.enforce_rc_ordering and getattr(wr, "_acked", False):
            # A cloned/replayed response after the original: without
            # this guard it would overwrite the landing buffer with
            # stale bytes and push a second CQE for the same WR
            # (mirrors the _handle_atomic_resp guard; gated so legacy
            # harnesses keep their pinned fingerprints).
            self.duplicate_acks += 1
            return
        wr._acked = True
        mr, offset, _length = wr.local
        mr.write(offset, packet.payload)
        landed = self.machine.pcie.dma_write(packet.length)

        def on_landed(_e: Event) -> None:
            if wr.signaled:
                self._push_cqe(qp.send_cq, Cqe(wr.wr_id, Opcode.READ, byte_len=packet.length))
            queued = qp.return_read_credit()
            if queued is not None:
                self.post_send(qp, queued)

        landed.add_callback(on_landed)

    def _handle_atomic_req(self, packet: Packet) -> None:
        """Execute a remote read-modify-write as the responder.

        The mutation happens inside the PCIe bus's locked occupancy
        window (:meth:`~repro.hw.pcie.PcieBus.dma_atomic`): the shared
        ``dma`` FifoServer never overlaps two services, so every atomic
        targeting this host is serialised regardless of which QP or
        requester issued it — the per-device atomicity guarantee.
        """
        from repro.verbs.types import ATOMIC_BYTES

        mr = self.mr_table.resolve(packet.raddr, packet.rkey, ATOMIC_BYTES)
        offset = mr.offset_of(packet.raddr)
        tag, compare_add, swap = _ATOMIC_WIRE.unpack(packet.payload)
        cache = self._atomic_replay.setdefault(
            (packet.src_machine, packet.src_qpn), {}
        )
        if packet.psn in cache:
            original = cache[packet.psn]
            if original is None:
                # The first copy is still inside its locked window; the
                # duplicate is dropped (the requester keeps its RTO).
                return
            # Replay: the response was lost.  Answer from the cache —
            # the RMW must not execute twice.
            self.atomic_replays += 1
            self._respond_atomic(packet, original)
            return
        cache[packet.psn] = None
        if len(cache) > _ATOMIC_REPLAY_DEPTH:
            for stale in sorted(cache)[: len(cache) - _ATOMIC_REPLAY_DEPTH]:
                if cache[stale] is not None:
                    del cache[stale]

        def locked() -> None:
            original = int.from_bytes(mr.read(offset, ATOMIC_BYTES), "little")
            if tag == _ATOMIC_CS_TAG:
                if original == compare_add:
                    mr.write(offset, swap.to_bytes(ATOMIC_BYTES, "little"))
            else:
                value = (original + compare_add) & _U64_MASK
                mr.write(offset, value.to_bytes(ATOMIC_BYTES, "little"))
            cache[packet.psn] = original
            self.atomics_served += 1
            if self.metrics is not None:
                self.metrics.counter("verbs.%s.atomics" % self.machine.name).inc()

        done = self.machine.pcie.dma_atomic(on_locked=locked)
        done.add_callback(
            lambda _e: self._respond_atomic(packet, cache[packet.psn])
        )

    def _respond_atomic(self, packet: Packet, original: int) -> None:
        from repro.verbs.types import ATOMIC_BYTES

        response = Packet(
            PacketKind.ATOMIC_RESP,
            packet.transport,
            self.machine.name,
            packet.dst_qpn,
            packet.src_machine,
            packet.src_qpn,
            payload=original.to_bytes(ATOMIC_BYTES, "little"),
            length=ATOMIC_BYTES,
            psn=packet.psn,
            wr=packet.wr,
        )
        served = self.machine.nic_egress.serve(self.profile.nic_egress_ns)
        served.add_callback(lambda _e: self._transmit(response))

    def _handle_atomic_resp(self, packet: Packet) -> None:
        qp = self.qps.get(packet.dst_qpn)
        wr = packet.wr
        if qp is None or wr is None:
            raise VerbError("atomic response for unknown QP/WR")
        if getattr(wr, "_acked", False):
            # a replayed response after the original arrived; drop it
            self.duplicate_acks += 1
            return
        wr._acked = True
        mr, offset, _length = wr.local
        mr.write(offset, packet.payload)
        landed = self.machine.pcie.dma_write(packet.length)

        def on_landed(_e: Event) -> None:
            if wr.signaled:
                self._push_cqe(
                    qp.send_cq, Cqe(wr.wr_id, wr.opcode, byte_len=packet.length)
                )
            queued = qp.return_read_credit()
            if queued is not None:
                self.post_send(qp, queued)

        landed.add_callback(on_landed)

    def _send_ack(self, packet: Packet, psn: Optional[int] = None) -> None:
        ack = Packet(
            PacketKind.ACK,
            packet.transport,
            self.machine.name,
            packet.dst_qpn,
            packet.src_machine,
            packet.src_qpn,
            psn=packet.psn if psn is None else psn,
            wr=packet.wr,
        )
        served = self.machine.nic_egress.serve(self.profile.nic_ingress_ack_ns)
        served.add_callback(lambda _e: self._transmit(ack))

    def _handle_ack(self, packet: Packet) -> None:
        self.acks_received += 1
        qp = self.qps.get(packet.dst_qpn)
        if qp is None or not qp.unacked:
            self.duplicate_acks += 1
            return  # duplicate ACK after a retransmit; harmless
        if self._rc_ordered(packet):
            # Cumulative: an ACK for PSN n acknowledges every send up
            # to n, so a lost ACK is repaired by the next one instead
            # of mis-crediting the FIFO head (which would disarm the
            # dropped packet's retransmit timer and lose the write).
            popped = False
            while qp.unacked and getattr(qp.unacked[0], "_psn", 0) <= packet.psn:
                wr = qp.unacked.popleft()
                wr._acked = True
                if wr.signaled:
                    self._push_cqe(
                        qp.send_cq, Cqe(wr.wr_id, wr.opcode, byte_len=wr.length)
                    )
                popped = True
            if not popped:
                self.duplicate_acks += 1
            return
        wr = qp.unacked.popleft()
        wr._acked = True
        if wr.signaled:
            self._push_cqe(qp.send_cq, Cqe(wr.wr_id, wr.opcode, byte_len=wr.length))

    # ------------------------------------------------------------------
    # Completions
    # ------------------------------------------------------------------

    def _push_cqe(self, cq: CompletionQueue, cqe: Cqe) -> None:
        """DMA-write a CQE into host memory, then make it pollable."""
        if self.metrics is not None:
            # CQE DMAs steal PCIe capacity from payload DMA — the cost
            # selective signaling avoids; count them so that shows up.
            self.metrics.counter("verbs.%s.cqe_dma" % self.machine.name).inc()
        landed = self.machine.pcie.dma_write(32)
        tracer = getattr(self.sim, "tracer", None)
        if tracer is not None:
            landed.add_callback(
                lambda _e: tracer.mark(
                    "%s.cpu" % self.machine.name,
                    "completion (%s) pollable" % cqe.opcode.value,
                )
            )
        landed.add_callback(lambda _e: cq.push(cqe))


def connect_pair(
    dev_a: RdmaDevice,
    dev_b: RdmaDevice,
    transport: Transport,
) -> Tuple[QueuePair, QueuePair]:
    """Create and bind a connected QP on each device (RC or UC)."""
    if not transport.connected:
        raise VerbError(
            "%s queue pairs are not connected; create them directly" % transport.value
        )
    qp_a = dev_a.create_qp(transport)
    qp_b = dev_b.create_qp(transport)
    qp_a.connect(dev_b.machine.name, qp_b.qpn)
    qp_b.connect(dev_a.machine.name, qp_a.qpn)
    return qp_a, qp_b
