"""Ablation (Section 5.5): WRITE/SEND hybrid vs a SEND/SEND HERD.

The design choice under test: HERD takes requests as RDMA WRITEs into a
polled region, which peaks higher but holds per-client responder state
in the NIC; taking requests as SENDs over UD costs ~4-5 Mops yet keeps
its peak at client counts where the hybrid has already declined.
"""

from repro.bench.report import FigureData, Series, format_figure
from repro.bench.figures import run_herd
from repro.herd import HerdConfig
from repro.herd.ud_variant import SendSendHerdCluster
from repro.workloads import Workload

CLIENT_COUNTS = (51, 260, 460)


def run_send_send(n_clients: int) -> float:
    cluster = SendSendHerdCluster(
        HerdConfig(n_server_processes=6),
        n_client_machines=max(17, n_clients // 5),
    )
    cluster.add_clients(
        n_clients, Workload(get_fraction=0.95, value_size=32, n_keys=1 << 12)
    )
    cluster.preload(range(1 << 12), 32)
    return cluster.run(measure_ns=120_000.0).mops


def build() -> FigureData:
    hybrid = Series(
        "WRITE/SEND hybrid",
        [
            (
                n,
                run_herd(
                    n_clients=n,
                    n_client_machines=max(17, n // 5),
                    measure_ns=120_000.0,
                ).mops,
            )
            for n in CLIENT_COUNTS
        ],
    )
    send_send = Series(
        "SEND/SEND over UD", [(n, run_send_send(n)) for n in CLIENT_COUNTS]
    )
    return FigureData(
        "ablation-send-send",
        "Request path: WRITE-into-region vs SEND-over-UD",
        "client processes",
        "Mops",
        [hybrid, send_send],
    )


def test_ablation_send_send(benchmark, emit):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_send_send", format_figure(data))

    hybrid = data.series_by_label("WRITE/SEND hybrid")
    send_send = data.series_by_label("SEND/SEND over UD")

    # At moderate scale the hybrid wins by the paper's 4-5 Mops.
    gap = hybrid.y_for(51) - send_send.y_for(51)
    assert 2.0 < gap < 8.0
    # At large scale the roles reverse: SEND/SEND holds its peak.
    assert send_send.y_for(460) > 0.9 * send_send.y_for(51)
    assert send_send.y_for(460) > hybrid.y_for(460)
