"""Figure 1: the DMA and network steps involved in posting verbs."""

from repro.bench.trace import _run_one, fig1


def test_fig01_verb_step_timelines(benchmark, emit):
    text = benchmark.pedantic(fig1, rounds=1, iterations=1)
    emit("fig01", text)

    inline_write = _run_one("WRITE, inlined, unreliable, unsignaled")
    rc_write = _run_one("WRITE (signaled, RC)")
    read = _run_one("READ")
    send = _run_one("SEND/RECV (UD)")

    # The paper's Figure 1 distinctions, as properties of the traces:
    # an inlined unreliable WRITE involves no DMA read at the requester
    # and no return traffic at all ...
    assert "requester.pcie.dma" not in inline_write
    assert "wire responder->requester" not in inline_write
    # ... a signaled RC WRITE fetches its payload by DMA and waits for
    # an ACK before the completion is pollable ...
    assert "requester.pcie.dma" in rc_write
    assert "wire responder->requester" in rc_write
    assert "completion (WRITE) pollable" in rc_write
    # ... a READ makes the responder DMA-read the data and ship it back ...
    assert "responder.pcie.dma" in read
    assert "wire responder->requester" in read
    assert "completion (READ) pollable" in read
    # ... and a SEND consumes a pre-posted RECV, generating a RECV
    # completion at the responder.
    assert "completion (RECV) pollable" in send
    assert "wire responder->requester" not in send
