"""Validation: the paper's emulation methodology vs full systems.

The paper evaluates *stripped-down* Pilaf and FaRM whose servers answer
instantly, arguing this gives the baselines "the maximum performance
advantage possible" (Section 5.1).  Because our substrate is simulated,
we can run the *full* systems — real cuckoo/hopscotch tables inside
registered regions, clients parsing real bucket bytes — and check the
claim: the emulated numbers should be close to (and not dramatically
below) the real systems' GET throughput.
"""

from repro.baselines import FarmCluster, FarmConfig, PilafCluster, PilafConfig
from repro.baselines.full_systems import (
    FarmFullCluster,
    FarmFullConfig,
    PilafFullCluster,
    PilafFullConfig,
)
from repro.bench.report import FigureData, Series, format_figure
from repro.workloads import Workload


def build() -> FigureData:
    workload = Workload(get_fraction=1.0, value_size=32, n_keys=6000)

    pilaf_em = PilafCluster(PilafConfig(value_bytes=32), workload).run().mops
    pilaf_full = PilafFullCluster(PilafFullConfig(value_bytes=32), workload)
    pilaf_full.preload(range(6000))
    pilaf_full_result = pilaf_full.run()

    farm_em = FarmCluster(FarmConfig(value_bytes=32), workload).run().mops
    farm_full = FarmFullCluster(FarmFullConfig(value_bytes=32), workload)
    farm_full.preload(range(6000))
    farm_full_result = farm_full.run()

    series = [
        Series("emulated (paper)", [("Pilaf", pilaf_em), ("FaRM", farm_em)]),
        Series(
            "full system (ours)",
            [("Pilaf", pilaf_full_result.mops), ("FaRM", farm_full_result.mops)],
        ),
    ]
    notes = [
        "Pilaf-full avg probes (emergent): %.2f vs the paper's assumed 1.6"
        % pilaf_full_result.extra["avg_probes"],
        "wrong values: %d (full-system GETs verify every byte)"
        % int(
            pilaf_full_result.extra["wrong_values"]
            + farm_full_result.extra["wrong_values"]
        ),
    ]
    return FigureData(
        "validation-emulation",
        "Emulated baselines vs full systems (100% GET, 48 B items)",
        "system",
        "Mops",
        series,
        notes=notes,
    )


def test_validation_emulation(benchmark, emit):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("validation_emulation", format_figure(data))

    emulated = data.series_by_label("emulated (paper)")
    full = data.series_by_label("full system (ours)")

    # The emulation tracks the full system within ~35% for both
    # baselines — the paper's comparison method is sound.
    for system in ("Pilaf", "FaRM"):
        gap = abs(full.y_for(system) - emulated.y_for(system))
        assert gap / emulated.y_for(system) < 0.35, system
