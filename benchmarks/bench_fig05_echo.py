"""Figure 5: ECHO throughput by verb pair and optimization level."""

from repro.bench.figures import fig5
from repro.bench.report import format_figure

LEVELS = ("basic", "+unreliable", "+unsignaled", "+inlined")


def test_fig05_echo_throughput(benchmark, emit):
    data = benchmark.pedantic(fig5, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig05", format_figure(data))

    wr_wr = data.series_by_label("WR/WR")
    wr_send = data.series_by_label("WR/SEND")
    send_send = data.series_by_label("SEND/SEND")

    # Each optimization increases throughput, cumulatively.
    for series in (wr_wr, wr_send, send_send):
        values = [series.y_for(level) for level in LEVELS]
        assert values == sorted(values), (series.label, values)
        assert values[-1] > 2.0 * values[0]

    # Paper's peak rates: WR/WR ~26, WR/SEND ~26 (the hybrid costs
    # nothing), SEND/SEND ~21.
    assert 22.0 < wr_wr.y_for("+inlined") < 30.0
    assert abs(wr_send.y_for("+inlined") - wr_wr.y_for("+inlined")) < 2.0
    assert 17.0 < send_send.y_for("+inlined") < 23.0

    # Optimized SEND/SEND exceeds three-fourths of the 26 Mops READ
    # peak — the observation that invalidates multi-READ GET designs.
    assert send_send.y_for("+inlined") > 0.75 * 26.0
