"""Figure 2: latency of verbs and ECHO operations."""

from repro.bench.figures import fig2
from repro.bench.report import format_figure


def test_fig02_verb_latency(benchmark, emit):
    data = benchmark.pedantic(fig2, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig02", format_figure(data))

    wr_inline = data.series_by_label("WR-INLINE")
    write = data.series_by_label("WRITE")
    read = data.series_by_label("READ")
    echo_half = data.series_by_label("ECHO/2")

    for size in (4, 32, 64):
        # Inlining avoids a DMA read, so inlined WRITEs are fastest.
        assert wr_inline.y_for(size) < write.y_for(size)
        # READ and WRITE traverse the same path: similar latency.
        assert abs(read.y_for(size) - write.y_for(size)) / read.y_for(size) < 0.2
        # The one-way WRITE latency (ECHO/2) is about half of READ's.
        assert 0.3 < echo_half.y_for(size) / read.y_for(size) < 0.7
        # Everything small is in the 1-3 microsecond regime.
        assert 1.0 < read.y_for(size) < 3.0

    # Latency grows with payload (PIO time for ECHO, wire for the rest).
    assert read.y_for(1024) > read.y_for(4)
    echo = data.series_by_label("ECHO")
    assert echo.y_for(256) > echo.y_for(4)
