"""Table 1: operations supported by each transport type."""

from repro.bench.figures import table1
from repro.verbs import Opcode, Transport, transport_supports


def test_table1_transport_matrix(benchmark, emit):
    text = benchmark(table1)
    emit("table1", text)
    # UC does not support READs, and UD does not support RDMA at all.
    assert transport_supports(Transport.RC, Opcode.READ)
    assert not transport_supports(Transport.UC, Opcode.READ)
    assert not transport_supports(Transport.UD, Opcode.WRITE)
    assert not transport_supports(Transport.UD, Opcode.READ)
    for transport in Transport:
        assert transport_supports(transport, Opcode.SEND)
        assert transport_supports(transport, Opcode.RECV)
