"""Figure 6: all-to-all scaling of UC WRITEs vs UD SENDs."""

from repro.bench.figures import fig6
from repro.bench.report import format_figure


def test_fig06_alltoall_scaling(benchmark, emit):
    data = benchmark.pedantic(fig6, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig06", format_figure(data))

    inbound = data.series_by_label("in-write-uc")
    out_write = data.series_by_label("out-write-uc")
    out_send = data.series_by_label("out-send-ud")

    # Inbound WRITEs scale: 256 responder QPs still run near peak.
    assert inbound.y_for(16) > 30.0
    # Outbound WRITEs collapse once N^2 requester contexts thrash.
    assert out_write.y_for(16) < 0.6 * out_write.y_for(8)
    assert out_write.y_for(16) < 0.45 * inbound.y_for(16)
    # Outbound SENDs over UD keep scaling (one QP per process).
    assert out_send.y_for(16) > 0.9 * out_send.y_for(8)
    assert out_send.y_for(16) > 2.0 * out_write.y_for(16)
