"""Figure 7: effect of prefetching on throughput."""

from repro.bench.figures import fig7
from repro.bench.report import format_figure


def test_fig07_prefetch(benchmark, emit):
    data = benchmark.pedantic(fig7, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig07", format_figure(data))

    n2_pref = data.series_by_label("N=2, prefetch")
    n2_nopref = data.series_by_label("N=2, no prefetch")
    n8_pref = data.series_by_label("N=8, prefetch")
    n8_nopref = data.series_by_label("N=8, no prefetch")

    # 5 cores deliver (near-)peak throughput even with N=8 accesses,
    # when prefetching; without it, throughput craters.
    assert n8_pref.y_for(5) > 15.0
    assert n8_pref.y_for(5) > 2.5 * n8_nopref.y_for(5)
    assert n2_pref.y_for(5) > n2_nopref.y_for(5)

    # More accesses hurt more without prefetching.
    assert n8_nopref.y_for(5) < n2_nopref.y_for(5)

    # Throughput rises with cores until the NIC/PIO ceiling.
    assert n8_pref.y_for(5) > n8_pref.y_for(1)
    # Prefetching with N=8 at 5 cores roughly matches N=2 prefetched —
    # "significant headroom to implement more complex applications".
    assert n8_pref.y_for(5) > 0.75 * n2_pref.y_for(5)
