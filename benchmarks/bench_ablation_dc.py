"""Extension (Section 5.5): Dynamically Connected requests at scale.

The paper expects HERD's ~260-client scalability limit "to be resolved
with the introduction of Dynamically Connected Transport in the new
Connect-IB cards".  This benchmark carries requests over a modelled DC
transport — one shared DC target at the server instead of one UC QP
per client — and checks that the Figure 12 knee disappears.
"""

from repro.bench.figures import run_herd
from repro.bench.report import FigureData, Series, format_figure

CLIENT_COUNTS = (51, 260, 460)


def build() -> FigureData:
    series = []
    for transport in ("UC", "DC"):
        pts = []
        for n in CLIENT_COUNTS:
            from repro.herd import HerdCluster, HerdConfig
            from repro.workloads import Workload

            cluster = HerdCluster(
                HerdConfig(n_server_processes=6, request_transport=transport),
                n_client_machines=max(17, n // 5),
                seed=2,
            )
            cluster.add_clients(
                n, Workload(get_fraction=0.95, value_size=32, n_keys=1 << 12)
            )
            cluster.preload(range(1 << 12), 32)
            pts.append((n, cluster.run(measure_ns=120_000.0).mops))
        series.append(Series("requests over %s" % transport, pts))
    return FigureData(
        "ablation-dc",
        "HERD request transport: UC (paper) vs Dynamically Connected",
        "client processes",
        "Mops",
        series,
    )


def test_ablation_dc_scaling(benchmark, emit):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_dc", format_figure(data))

    uc = data.series_by_label("requests over UC")
    dc = data.series_by_label("requests over DC")

    # At moderate scale they are equivalent.
    assert abs(uc.y_for(51) - dc.y_for(51)) / uc.y_for(51) < 0.1
    # Past the QP-cache knee, UC declines while DC holds its peak.
    assert uc.y_for(460) < 0.7 * uc.y_for(51)
    assert dc.y_for(460) > 0.85 * dc.y_for(51)
    assert dc.y_for(460) > 1.5 * uc.y_for(460)
