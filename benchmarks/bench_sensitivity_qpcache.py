"""Sensitivity analysis: the Figure 12 knee tracks NIC SRAM capacity.

The model attributes HERD's ~260-client scalability limit to the RNIC's
QP-context cache.  If that attribution is right, resizing the modelled
cache must move the knee proportionally — a falsifiable check on the
mechanism, not just the curve.
"""

from repro.bench.report import FigureData, Series, format_figure
from repro.herd import HerdCluster, HerdConfig
from repro.hw import APT
from repro.workloads import Workload

CLIENT_COUNTS = (100, 200, 300, 400)
CACHE_SIZES = (140, 280, 560)  # half, stock, double


def run_cell(cache_units: int, n_clients: int) -> float:
    profile = APT.replace(qp_cache_units=cache_units)
    cluster = HerdCluster(
        HerdConfig(n_server_processes=6),
        profile=profile,
        n_client_machines=max(17, n_clients // 5),
        seed=2,
    )
    cluster.add_clients(
        n_clients, Workload(get_fraction=0.95, value_size=32, n_keys=1 << 12)
    )
    cluster.preload(range(1 << 12), 32)
    return cluster.run(measure_ns=100_000.0).mops


def build() -> FigureData:
    series = [
        Series(
            "%d context units" % units,
            [(n, run_cell(units, n)) for n in CLIENT_COUNTS],
        )
        for units in CACHE_SIZES
    ]
    return FigureData(
        "sensitivity-qpcache",
        "HERD client scaling vs modelled NIC QP-cache capacity",
        "client processes",
        "Mops",
        series,
    )


def test_sensitivity_qpcache(benchmark, emit):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("sensitivity_qpcache", format_figure(data))

    half = data.series_by_label("140 context units")
    stock = data.series_by_label("280 context units")
    double = data.series_by_label("560 context units")

    # A half-size cache knees before 200 clients; stock before 400;
    # a double-size cache does not knee in this range at all.
    assert half.y_for(200) < 0.85 * half.y_for(100)
    assert stock.y_for(200) > 0.95 * stock.y_for(100)
    assert stock.y_for(400) < 0.85 * stock.y_for(200)
    assert double.y_for(400) > 0.9 * double.y_for(100)

    # At every client count, more cache never hurts.
    for n in CLIENT_COUNTS:
        assert half.y_for(n) <= stock.y_for(n) + 1.0
        assert stock.y_for(n) <= double.y_for(n) + 1.0
