"""Figure 11: end-to-end latency vs throughput."""

from repro.bench.figures import fig11
from repro.bench.report import format_figure


def test_fig11_latency_vs_throughput(benchmark, emit):
    data = benchmark.pedantic(fig11, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig11", format_figure(data))

    herd_tput = data.series_by_label("HERD Mops")
    herd_lat = data.series_by_label("HERD lat_us")
    pilaf_lat = data.series_by_label("Pilaf-em-OPT lat_us")
    farm_lat = data.series_by_label("FaRM-em lat_us")
    var_lat = data.series_by_label("FaRM-em-VAR lat_us")

    # HERD saturates near 25-26 Mops with single-digit-us latency.
    peak = max(y for _x, y in herd_tput.points)
    assert 22.0 < peak < 30.0
    assert herd_lat.y_for(51) < 10.0

    # At peak load, HERD's latency is well below Pilaf's and VAR's
    # (paper: over 2x lower at their respective peaks).
    assert pilaf_lat.y_for(51) > 2.0 * herd_lat.y_for(51)
    assert var_lat.y_for(51) > 1.5 * herd_lat.y_for(51)

    # FaRM-em (single READ, no server work) has the lowest unloaded
    # latency; Pilaf (2.6 READs) the highest.
    assert farm_lat.y_for(2) < herd_lat.y_for(2)
    assert pilaf_lat.y_for(2) > var_lat.y_for(2) > farm_lat.y_for(2)

    # Latency rises with load for every system.
    assert herd_lat.y_for(51) > herd_lat.y_for(2)
