"""Figure 10: end-to-end throughput vs value size."""

from repro.bench.figures import fig10
from repro.bench.report import format_figure


def test_fig10_value_size(benchmark, emit):
    data = benchmark.pedantic(fig10, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig10", format_figure(data))

    herd = data.series_by_label("HERD")
    pilaf = data.series_by_label("Pilaf-em-OPT")
    farm = data.series_by_label("FaRM-em")
    farm_var = data.series_by_label("FaRM-em-VAR")

    # HERD sustains (near-)peak throughput through small values ...
    assert herd.y_for(4) > 22.0
    assert herd.y_for(32) > 22.0
    # ... and beats every READ-based design there.
    for size in (4, 16, 32):
        assert herd.y_for(size) > pilaf.y_for(size)
        assert herd.y_for(size) > farm_var.y_for(size)

    # FaRM-em's READ grows as 6*(SV+16): its curve collapses fastest.
    assert farm.y_for(256) < 0.35 * farm.y_for(16)
    assert farm.y_for(1024) < farm_var.y_for(1024) * 0.5

    # Pilaf's GET cost is nearly size-independent until bandwidth bites.
    assert abs(pilaf.y_for(4) - pilaf.y_for(128)) / pilaf.y_for(4) < 0.15

    # Large values: HERD, Pilaf, and FaRM-em-VAR converge (paper: the
    # three are within ~10%; we allow 25% at bench scale).
    big = [herd.y_for(1024), pilaf.y_for(1024), farm_var.y_for(1024)]
    assert max(big) < 1.25 * min(big)
