"""Figure 14: per-core throughput under skewed and uniform workloads."""

from repro.bench.figures import fig14
from repro.bench.report import format_figure


def test_fig14_skew_resistance(benchmark, emit):
    data = benchmark.pedantic(fig14, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig14", format_figure(data))

    zipf = data.series_by_label("Zipf (.99)")
    uniform = data.series_by_label("Uniform")

    zipf_vals = [y for _x, y in zipf.points]
    uniform_vals = [y for _x, y in uniform.points]
    assert len(zipf_vals) == 6  # six cores, six partitions

    # Paper: under Zipf(.99) the most loaded core is only ~50% more
    # loaded than the least, even though the hottest key is orders of
    # magnitude more popular than average.  The exact spread is hash
    # placement luck of the few hottest keys (ours computes to ~1.66
    # over a 1M-key universe); the claim being reproduced is that it
    # is nowhere near the 6x a naive hot-partition split would give.
    assert max(zipf_vals) / min(zipf_vals) < 1.9

    # Total throughput under skew stays close to the uniform total —
    # "HERD adapts well to skew".
    assert sum(zipf_vals) > 0.85 * sum(uniform_vals)

    # The uniform workload is nearly perfectly balanced.
    assert max(uniform_vals) / min(uniform_vals) < 1.15
