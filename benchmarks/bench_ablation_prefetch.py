"""Ablation (Section 4.1.1): HERD's prefetch pipeline, on the real system.

Figure 7 measures prefetching on an ECHO server; this ablation flips
the same switch on HERD itself (MICA lookups instead of synthetic
memory accesses) and sweeps cores.
"""

from repro.bench.report import FigureData, Series, format_figure
from repro.bench.figures import run_herd

CORES = (1, 3, 6)


def build() -> FigureData:
    series = []
    for prefetch in (True, False):
        label = "prefetch" if prefetch else "no prefetch"
        pts = [
            (
                cores,
                run_herd(
                    n_server_processes=cores,
                    prefetch=prefetch,
                    measure_ns=120_000.0,
                ).mops,
            )
            for cores in CORES
        ]
        series.append(Series(label, pts))
    return FigureData(
        "ablation-prefetch",
        "HERD with and without the prefetch pipeline",
        "CPU cores",
        "Mops",
        series,
    )


def test_ablation_prefetch(benchmark, emit):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_prefetch", format_figure(data))

    with_pf = data.series_by_label("prefetch")
    without = data.series_by_label("no prefetch")

    # Prefetching matters most when cores are scarce: the DRAM stalls
    # come straight out of the per-core request budget.
    assert with_pf.y_for(1) > 1.5 * without.y_for(1)
    # With prefetching, 6 cores reach the NIC/PIO ceiling; without it
    # they are still CPU-bound (the paper's point: prefetching lets
    # *fewer* cores deliver peak throughput).
    assert with_pf.y_for(6) > 22.0
    assert without.y_for(6) < 0.8 * with_pf.y_for(6)
    assert without.y_for(6) > 0.5 * with_pf.y_for(6)
