"""Shared helpers for the figure-reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures at
``bench`` scale, prints it, saves it under ``benchmarks/out/``, and
asserts the paper's qualitative claims about it (who wins, by roughly
what factor, where crossovers fall).  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture
def emit():
    """Print a rendered figure and persist it to benchmarks/out/."""

    def _emit(exp_id: str, text: str) -> None:
        OUT_DIR.mkdir(exist_ok=True)
        (OUT_DIR / ("%s.txt" % exp_id)).write_text(text + "\n")
        print()
        print(text)

    return _emit
