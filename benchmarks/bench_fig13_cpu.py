"""Figure 13: throughput as a function of server CPU cores."""

from repro.bench.figures import fig13
from repro.bench.report import format_figure


def test_fig13_cpu_cores(benchmark, emit):
    data = benchmark.pedantic(fig13, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig13", format_figure(data))

    herd = data.series_by_label("HERD")
    pilaf = data.series_by_label("Pilaf-em-OPT (PUT)")
    farm = data.series_by_label("FaRM-em (PUT)")

    # Paper: one HERD core delivers ~6.3 Mops; 5 cores deliver >=95%
    # of peak (we check against the 6-core point).
    assert 4.5 < herd.y_for(1) < 8.0
    assert herd.y_for(5) > 0.95 * herd.y_for(6)

    # Provisioning the baselines for 100% PUTs takes real CPU: at one
    # core they are far from peak, and Pilaf (which must post RECVs)
    # needs more cores than FaRM (which polls a request region).
    assert pilaf.y_for(1) < 0.5 * pilaf.y_for(6)
    assert farm.y_for(1) < 0.5 * farm.y_for(6)
    assert pilaf.y_for(3) < farm.y_for(3)

    # Throughput is non-decreasing in cores for every system.
    for series in (herd, pilaf, farm):
        values = [y for _x, y in series.points]
        assert all(b >= a - 1.0 for a, b in zip(values, values[1:])), series.label
