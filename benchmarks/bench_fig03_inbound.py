"""Figure 3: inbound verbs throughput."""

from repro.bench.figures import fig3
from repro.bench.report import format_figure


def test_fig03_inbound_throughput(benchmark, emit):
    data = benchmark.pedantic(fig3, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig03", format_figure(data))

    write_uc = data.series_by_label("WRITE-UC")
    write_rc = data.series_by_label("WRITE-RC")
    read_rc = data.series_by_label("READ-RC")

    # Paper: ~35 Mops inbound WRITEs, ~34% above the 26 Mops READ peak,
    # for payloads up to 128 B.
    for size in (32, 128):
        assert 30.0 < write_uc.y_for(size) < 40.0
        assert 23.0 < read_rc.y_for(size) < 29.0
        assert write_uc.y_for(size) > 1.2 * read_rc.y_for(size)
        # Reliable and unreliable WRITEs are nearly identical inbound.
        assert abs(write_rc.y_for(size) - write_uc.y_for(size)) / write_uc.y_for(size) < 0.1

    # Large payloads become bandwidth-bound and converge downwards.
    assert write_uc.y_for(1024) < 10.0
    assert read_rc.y_for(1024) < 10.0
