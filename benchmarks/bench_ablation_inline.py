"""Ablation (Sections 4.3, 5.3): HERD's inline-response cutoff.

The design choice under test: responses are inlined into the WQE below
144 bytes (PIO wins for small payloads) and DMA-fetched above it
(DMA wins for large ones, Figure 4b).  We force each policy on both
sides of the cutoff.
"""

from repro.bench.report import FigureData, Series, format_figure
from repro.bench.figures import run_herd
from repro.hw import APT

VALUE_SIZES = (32, 128, 240)


def build() -> FigureData:
    always_inline = APT.replace(herd_inline_cutoff=APT.max_inline)
    never_inline = APT.replace(herd_inline_cutoff=0)
    series = []
    for label, profile in (
        ("always inline (<=256)", always_inline),
        ("never inline", never_inline),
        ("cutoff at 144 (HERD)", APT),
    ):
        pts = [
            (size, run_herd(profile=profile, value_size=size, measure_ns=120_000.0).mops)
            for size in VALUE_SIZES
        ]
        series.append(Series(label, pts))
    return FigureData(
        "ablation-inline",
        "Response path: inlined (PIO) vs DMA-fetched SENDs",
        "value size (B)",
        "Mops",
        series,
    )


def test_ablation_inline_cutoff(benchmark, emit):
    data = benchmark.pedantic(build, rounds=1, iterations=1)
    emit("ablation_inline", format_figure(data))

    inline = data.series_by_label("always inline (<=256)")
    dma = data.series_by_label("never inline")
    herd = data.series_by_label("cutoff at 144 (HERD)")

    # Small values: inlining wins big (PIO beats the WQE+payload fetch).
    assert inline.y_for(32) > 1.5 * dma.y_for(32)
    # Large values: the gap mostly closes (the raw verb rates cross
    # between 144 and 192 B, Figure 4; inside HERD the DMA engine also
    # carries request landings, which keeps inlining slightly ahead
    # through 256 B in our model — the paper's hardware saturates PIO
    # harder, hence its 144 B cutoff).
    assert dma.y_for(240) > 0.65 * inline.y_for(240)
    assert (inline.y_for(240) - dma.y_for(240)) < 0.5 * (
        inline.y_for(32) - dma.y_for(32)
    )
    # HERD follows its configured policy faithfully on both sides.
    assert herd.y_for(32) >= 0.95 * inline.y_for(32)
    assert herd.y_for(240) >= 0.95 * dma.y_for(240)
