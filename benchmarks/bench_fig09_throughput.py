"""Figure 9: end-to-end throughput comparison, 48-byte items."""

from repro.bench.figures import fig9
from repro.bench.report import format_figure

MIXES = ("5% PUT", "50% PUT", "100% PUT")


def test_fig09_end_to_end_throughput(benchmark, emit):
    data = benchmark.pedantic(fig9, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig09", format_figure(data))

    herd = data.series_by_label("HERD")
    pilaf = data.series_by_label("Pilaf-em-OPT")
    farm = data.series_by_label("FaRM-em")
    farm_var = data.series_by_label("FaRM-em-VAR")

    # HERD: ~26 Mops regardless of the workload mix (paper: both
    # read- and write-intensive reach 26).
    for mix in MIXES:
        assert 22.0 < herd.y_for(mix) < 30.0
    spread = max(herd.y_for(m) for m in MIXES) - min(herd.y_for(m) for m in MIXES)
    assert spread < 2.0

    # Read-intensive: HERD is over 2x the READ-based designs.
    assert herd.y_for("5% PUT") > 2.0 * pilaf.y_for("5% PUT")
    assert herd.y_for("5% PUT") > 1.4 * farm.y_for("5% PUT")
    assert herd.y_for("5% PUT") > 1.7 * farm_var.y_for("5% PUT")

    # Paper's bands: Pilaf ~9.9, FaRM-em ~17.2, FaRM-em-VAR ~11.4.
    assert 8.0 < pilaf.y_for("5% PUT") < 12.0
    assert 14.0 < farm.y_for("5% PUT") < 20.0
    assert 10.0 < farm_var.y_for("5% PUT") < 16.0

    # The paper's surprise: emulated systems' PUTs beat their own GETs.
    assert pilaf.y_for("100% PUT") > pilaf.y_for("5% PUT")
    assert farm.y_for("100% PUT") > farm.y_for("5% PUT")
