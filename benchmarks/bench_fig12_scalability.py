"""Figure 12: HERD throughput vs number of client processes."""

from repro.bench.figures import fig12
from repro.bench.report import format_figure


def test_fig12_client_scalability(benchmark, emit):
    data = benchmark.pedantic(fig12, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig12", format_figure(data))

    ws4 = data.series_by_label("WS=4")
    ws16 = data.series_by_label("WS=16")

    # Peak throughput sustains through ~260 connected client processes.
    assert ws4.y_for(100) > 22.0
    assert ws4.y_for(260) > 0.95 * ws4.y_for(100)

    # Beyond the NIC's QP-context capacity, throughput declines
    # steadily (not a cliff to zero).
    assert ws4.y_for(340) < ws4.y_for(260)
    assert ws4.y_for(460) < ws4.y_for(340)
    assert ws4.y_for(460) > 0.3 * ws4.y_for(260)

    # The deeper window behaves no worse (the paper found it declines
    # more slowly; our model reproduces the knee but not the window
    # effect — see EXPERIMENTS.md).
    assert ws16.y_for(460) > 0.8 * ws4.y_for(460)
