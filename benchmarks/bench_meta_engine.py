"""Meta-benchmarks: how fast is the simulator itself?

Unlike the figure benchmarks (which measure *simulated* Mops), these
measure wall-clock performance of the discrete-event kernel — the thing
that makes 250 µs x 26 Mops experiments tractable in Python.  They use
pytest-benchmark conventionally: timing real executions.
"""

from repro.hw import APT, Fabric, Machine
from repro.sim import FifoServer, Simulator, Store
from repro.verbs import RdmaDevice, Transport, WorkRequest, connect_pair


def test_calendar_throughput(benchmark):
    """Raw timeout scheduling + dispatch."""

    def run():
        sim = Simulator()
        for i in range(20_000):
            sim.timeout(float(i % 997))
        sim.run_until_idle()
        return sim.now

    assert benchmark(run) > 0


def test_fifo_server_throughput(benchmark):
    """The hot path of every hardware station."""

    def run():
        sim = Simulator()
        server = FifoServer(sim, "s")
        for _ in range(20_000):
            server.serve(28.5)
        sim.run_until_idle()
        return server.jobs

    assert benchmark(run) == 20_000


def test_store_handoff_throughput(benchmark):
    """Producer/consumer handoff (CQs, request queues)."""

    def run():
        sim = Simulator()
        store = Store(sim)
        done = {"n": 0}

        def consumer():
            while done["n"] < 10_000:
                yield store.get()
                done["n"] += 1

        def producer():
            for i in range(10_000):
                yield sim.timeout(1.0)
                store.put(i)

        sim.process(consumer())
        sim.process(producer())
        sim.run_until_idle()
        return done["n"]

    assert benchmark(run) == 10_000


def test_end_to_end_verb_rate(benchmark):
    """Simulated-op throughput of the full verbs datapath (wall time)."""

    def run():
        sim = Simulator()
        fabric = Fabric(sim, APT)
        server = RdmaDevice(Machine(sim, fabric, "server"))
        client = RdmaDevice(Machine(sim, fabric, "client"))
        mr = server.register_memory(4096)
        _sqp, cqp = connect_pair(server, client, Transport.UC)
        for _ in range(2_000):
            client.post_send(
                cqp,
                WorkRequest.write(
                    raddr=mr.addr, rkey=mr.rkey, payload=b"x" * 32,
                    inline=True, signaled=False,
                ),
            )
        sim.run_until_idle()
        return server.writes_received

    assert benchmark(run) == 2_000


def test_workload_generation_rate(benchmark):
    """Batched operation synthesis (uniform keys, 50/50 GET/PUT).

    Covers the numpy-vectorised keyhash/value path in
    repro.workloads.ycsb.WorkloadStream; the trace itself is pinned
    bit-for-bit against the scalar oracle in tests/test_workloads.py.
    """
    from repro.workloads import Workload

    def run():
        stream = Workload(
            get_fraction=0.5, value_size=32, n_keys=1 << 20
        ).stream(seed=1)
        next_op = stream.next_op
        for _ in range(20_000):
            next_op()
        return stream.generated

    assert benchmark(run) == 20_000
