"""Figure 4: outbound verbs throughput."""

from repro.bench.figures import fig4
from repro.bench.report import format_figure


def test_fig04_outbound_throughput(benchmark, emit):
    data = benchmark.pedantic(fig4, kwargs={"scale": "bench"}, rounds=1, iterations=1)
    emit("fig04", format_figure(data))

    wr_inline = data.series_by_label("WR-INLINE")
    send_ud = data.series_by_label("SEND-UD")
    write_uc = data.series_by_label("WRITE-UC")
    read_rc = data.series_by_label("READ-RC")

    # Small payloads: inlined WRITEs and SENDs beat READs, which beat
    # non-inlined (DMA-fetched) WRITEs.
    for size in (16, 32):
        assert wr_inline.y_for(size) > read_rc.y_for(size)
        assert send_ud.y_for(size) > read_rc.y_for(size) * 0.9
        assert read_rc.y_for(size) > write_uc.y_for(size)
    assert wr_inline.y_for(16) > 23.0
    assert 19.0 < read_rc.y_for(32) < 25.0
    assert write_uc.y_for(32) < 19.0

    # PIO steps: inlined throughput declines with payload far faster
    # than the DMA path — they approach, which is why HERD stops
    # inlining large responses (144 B on Apt).
    inline_decline = wr_inline.y_for(16) - wr_inline.y_for(256)
    dma_decline = write_uc.y_for(16) - write_uc.y_for(256)
    assert wr_inline.y_for(256) < wr_inline.y_for(16) * 0.7
    assert dma_decline < 0.5 * inline_decline
    assert wr_inline.y_for(256) < write_uc.y_for(256) * 1.6

    # The UD header makes SENDs step down earlier than WRITEs.
    assert send_ud.y_for(16) <= wr_inline.y_for(16) + 0.5
